#ifndef STREAMLINE_DATAFLOW_TEMPORAL_JOIN_H_
#define STREAMLINE_DATAFLOW_TEMPORAL_JOIN_H_

#include <string>

#include "common/flat_hash_map.h"
#include "dataflow/changelog.h"
#include "dataflow/operator.h"

namespace streamline {

/// Stream-to-table ("temporal") join: input 1 is a changelog that upserts
/// a keyed dimension table (latest record per key wins); input 0 is the
/// fact stream, enriched with the current table row for its key. The
/// standard pattern behind "enrich ad events with campaign metadata that
/// changes over time".
///
/// Semantics: processing order within the operator decides "current" --
/// facts are enriched with the newest table row already applied (Flink's
/// processing-time temporal join). Facts with no table row yet are dropped
/// or emitted with nulls, per `emit_unmatched`. The table is checkpointed.
class TemporalJoinOperator : public Operator {
 public:
  struct Spec {
    KeySelector fact_key;
    KeySelector table_key;
    /// Emit facts without a matching row, padded with `table_width` nulls.
    bool emit_unmatched = false;
    /// Number of fields a table row contributes to the output (needed for
    /// null padding of unmatched facts).
    size_t table_width = 0;
  };

  TemporalJoinOperator(std::string name, Spec spec);

  Status Open(const OperatorContext& ctx) override;
  void ProcessRecord(int input, Record&& record, Collector* out) override;
  void ProcessWatermark(Timestamp wm, Collector* out) override;
  Status SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  bool SupportsIncrementalState() const override { return true; }
  void EnableIncrementalState() override { changelog_.Enable(); }
  Status SnapshotDelta(ChangelogSink* sink) override;
  Status ApplyDelta(BinaryReader* r) override;
  void ResetDelta() override { changelog_.Clear(); }
  std::string Name() const override { return name_; }

  size_t table_size() const { return table_.size(); }

 private:
  std::string name_;
  Spec spec_;
  FlatHashMap<Value, Record> table_;
  KeyedChangelog changelog_;
  Gauge* load_gauge_ = nullptr;
  Gauge* probe_gauge_ = nullptr;
  Gauge* keys_gauge_ = nullptr;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_TEMPORAL_JOIN_H_
