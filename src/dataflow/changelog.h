#ifndef STREAMLINE_DATAFLOW_CHANGELOG_H_
#define STREAMLINE_DATAFLOW_CHANGELOG_H_

#include <cstdint>
#include <vector>

#include "common/flat_hash_map.h"
#include "common/value.h"

namespace streamline {

/// Changelog record tags -- the first byte of every delta record an
/// operator's SnapshotDelta writes. kDeltaMeta carries operator-wide
/// non-keyed state (watermark, sequence counters, reorder buffer);
/// kDeltaUpsert is followed by the key, a present flag, and (when present)
/// the key's full serialized state; kDeltaErase is followed by the key. A
/// non-present upsert is a *phantom*: the key was inserted and erased
/// again within the epoch -- replay re-performs the insert with default
/// state (the value never survives, only the structural operation matters
/// for entry order) and a later erase record removes it.
inline constexpr uint8_t kDeltaMetaTag = 0;
inline constexpr uint8_t kDeltaUpsertTag = 1;
inline constexpr uint8_t kDeltaEraseTag = 2;

/// Ordered, coalescing record of the keys a keyed operator touched since
/// the last checkpoint barrier. SnapshotDelta walks the events in
/// occurrence order and serializes each key's *final* state, so the
/// changelog holds keys and hashes only -- O(keys touched), not O(records
/// processed).
///
/// Ordering is load-bearing: FlatHashMap serializes its dense entries in
/// insertion order, and Erase is a swap-remove that moves the last entry
/// into the hole. Recovery replays the events in order, re-performing the
/// same structural operation sequence on the restored map, which makes the
/// recovered entry order -- and therefore the next full snapshot's bytes --
/// identical to the live run's. The only coalescing that preserves this is
/// upsert-after-upsert of the same key (an in-place value update has no
/// structural effect, and the final value is serialized at the barrier
/// anyway); every other transition appends a new event.
class KeyedChangelog {
 public:
  enum class Op : uint8_t { kUpsert = 1, kErase = 2 };

  struct Event {
    Value key;
    uint64_t hash = 0;
    Op op = Op::kUpsert;
  };

  bool enabled() const { return enabled_; }
  void Enable() { enabled_ = true; }

  /// The key was inserted or its value mutated.
  void Upsert(const Value& key, uint64_t hash) {
    if (!enabled_) return;
    auto [entry, inserted] = latest_.TryEmplace(hash, key, size_t{0});
    if (!inserted && events_[entry->second].op == Op::kUpsert) return;
    entry->second = events_.size();
    events_.push_back(Event{key, hash, Op::kUpsert});
  }

  /// The key was erased (swap-remove). Never coalesces: the erase is a
  /// structural operation whose position in the sequence matters.
  void Erase(const Value& key, uint64_t hash) {
    if (!enabled_) return;
    auto [entry, inserted] = latest_.TryEmplace(hash, key, size_t{0});
    entry->second = events_.size();
    events_.push_back(Event{key, hash, Op::kErase});
  }

  const std::vector<Event>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// Forgets everything; called after the delta was sealed (or a full base
  /// snapshot captured the state wholesale).
  void Clear() {
    events_.clear();
    latest_.clear();
  }

 private:
  bool enabled_ = false;
  std::vector<Event> events_;
  /// key -> index of its latest event in events_ (coalescing lookup).
  FlatHashMap<Value, size_t> latest_;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_CHANGELOG_H_
