#include "dataflow/graph.h"

#include <deque>

#include "common/logging.h"

namespace streamline {

std::string_view PartitionSchemeToString(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kForward:
      return "forward";
    case PartitionScheme::kHash:
      return "hash";
    case PartitionScheme::kRebalance:
      return "rebalance";
    case PartitionScheme::kBroadcast:
      return "broadcast";
  }
  return "unknown";
}

int LogicalGraph::AddSource(std::string name, int parallelism,
                            SourceFactory factory, NodeTraits traits) {
  STREAMLINE_CHECK_GT(parallelism, 0);
  GraphNode node;
  node.id = static_cast<int>(nodes_.size());
  node.name = std::move(name);
  node.parallelism = parallelism;
  node.is_source = true;
  node.source_factory = std::move(factory);
  node.traits = traits;
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

int LogicalGraph::AddOperator(std::string name, int parallelism,
                              OperatorFactory factory, NodeTraits traits) {
  STREAMLINE_CHECK_GT(parallelism, 0);
  GraphNode node;
  node.id = static_cast<int>(nodes_.size());
  node.name = std::move(name);
  node.parallelism = parallelism;
  node.is_source = false;
  node.op_factory = std::move(factory);
  node.traits = traits;
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

Status LogicalGraph::Connect(int from, int to, PartitionScheme scheme,
                             KeySelector key, int input_ordinal,
                             int key_field, KeyHashFn key_hash) {
  if (from < 0 || from >= static_cast<int>(nodes_.size()) || to < 0 ||
      to >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument("Connect: unknown node id");
  }
  if (nodes_[to].is_source) {
    return Status::InvalidArgument("Connect: sources cannot have inputs");
  }
  if (scheme == PartitionScheme::kHash && key == nullptr) {
    return Status::InvalidArgument("Connect: hash partitioning needs a key");
  }
  if (scheme == PartitionScheme::kForward &&
      nodes_[from].parallelism != nodes_[to].parallelism) {
    return Status::InvalidArgument(
        "Connect: forward edges require equal parallelism (" +
        nodes_[from].name + " -> " + nodes_[to].name + ")");
  }
  GraphEdge edge;
  edge.from = from;
  edge.to = to;
  edge.scheme = scheme;
  edge.key = std::move(key);
  edge.input_ordinal = input_ordinal;
  edge.key_field = key_field;
  edge.key_hash = std::move(key_hash);
  if (scheme == PartitionScheme::kHash && edge.key_hash == nullptr &&
      edge.key_field < 0) {
    // Fallback hash-only selector: still pays the Value copy of the
    // generic KeySelector, but keeps the router on a single code path.
    edge.key_hash = [k = edge.key](const Record& r) {
      return KeyHashOf(k(r));
    };
  }
  edges_.push_back(std::move(edge));
  return Status::Ok();
}

std::vector<const GraphEdge*> LogicalGraph::InEdges(int id) const {
  std::vector<const GraphEdge*> out;
  for (const GraphEdge& e : edges_) {
    if (e.to == id) out.push_back(&e);
  }
  return out;
}

std::vector<const GraphEdge*> LogicalGraph::OutEdges(int id) const {
  std::vector<const GraphEdge*> out;
  for (const GraphEdge& e : edges_) {
    if (e.from == id) out.push_back(&e);
  }
  return out;
}

Status LogicalGraph::Validate() const {
  if (nodes_.empty()) return Status::InvalidArgument("empty graph");
  bool has_source = false;
  for (const GraphNode& n : nodes_) {
    if (n.is_source) {
      has_source = true;
      if (!n.source_factory) {
        return Status::InvalidArgument("source '" + n.name +
                                       "' has no factory");
      }
      if (!InEdges(n.id).empty()) {
        return Status::InvalidArgument("source '" + n.name + "' has inputs");
      }
    } else {
      if (!n.op_factory) {
        return Status::InvalidArgument("operator '" + n.name +
                                       "' has no factory");
      }
      if (InEdges(n.id).empty()) {
        return Status::InvalidArgument("operator '" + n.name +
                                       "' has no inputs");
      }
    }
  }
  if (!has_source) return Status::InvalidArgument("graph has no source");
  if (TopologicalOrder().size() != nodes_.size()) {
    return Status::InvalidArgument("graph contains a cycle");
  }
  return Status::Ok();
}

std::vector<int> LogicalGraph::TopologicalOrder() const {
  std::vector<int> in_degree(nodes_.size(), 0);
  for (const GraphEdge& e : edges_) ++in_degree[e.to];
  std::deque<int> ready;
  for (const GraphNode& n : nodes_) {
    if (in_degree[n.id] == 0) ready.push_back(n.id);
  }
  std::vector<int> order;
  while (!ready.empty()) {
    const int id = ready.front();
    ready.pop_front();
    order.push_back(id);
    for (const GraphEdge& e : edges_) {
      if (e.from == id && --in_degree[e.to] == 0) ready.push_back(e.to);
    }
  }
  return order;
}

}  // namespace streamline
