#include "dataflow/sources.h"

#include <algorithm>

#include "common/random.h"

namespace streamline {

Status VectorSource::Run(SourceContext* ctx) {
  // Countdown instead of `pos_ % watermark_every_`: a 64-bit division per
  // record is measurable at engine throughput. One division here restores
  // the cadence after a checkpoint restore.
  uint64_t until_wm =
      watermark_every_ > 0 ? watermark_every_ - pos_ % watermark_every_ : 0;
  while (pos_ < records_.size()) {
    Record& r = records_[pos_];
    if (pos_ + 8 < records_.size()) {
      __builtin_prefetch(&records_[pos_ + 8]);
    }
    const Timestamp ts = r.timestamp;
    // Emit first, increment after: a barrier snapshot taken inside Emit
    // (before the record is pushed) must record this element as NOT yet
    // consumed, or a restored job would skip it. Moving out is safe: a
    // restored source is a fresh instance built by the factory.
    if (!ctx->Emit(std::move(r))) return Status::Ok();  // cancelled
    ++pos_;
    if (watermark_every_ > 0 && --until_wm == 0) {
      until_wm = watermark_every_;
      ctx->EmitWatermark(ts);
    }
  }
  return Status::Ok();
}

Status VectorSource::SnapshotState(BinaryWriter* w) const {
  w->WriteU64(pos_);
  return Status::Ok();
}

Status VectorSource::RestoreState(BinaryReader* r) {
  auto pos = r->ReadU64();
  if (!pos.ok()) return pos.status();
  pos_ = *pos;
  return Status::Ok();
}

SourceFactory VectorSource::Factory(std::vector<Record> records,
                                    uint64_t watermark_every) {
  return [records = std::move(records), watermark_every](
             int subtask, int parallelism) -> std::unique_ptr<SourceFunction> {
    std::vector<Record> mine;
    for (size_t i = subtask; i < records.size();
         i += static_cast<size_t>(parallelism)) {
      mine.push_back(records[i]);
    }
    return std::make_unique<VectorSource>(std::move(mine), watermark_every);
  };
}

Status GeneratorSource::Run(SourceContext* ctx) {
  // Countdown instead of a per-record modulo (see VectorSource::Run).
  uint64_t until_wm =
      watermark_every_ > 0 ? watermark_every_ - seq_ % watermark_every_ : 0;
  for (;;) {
    std::optional<Record> r = fn_(seq_);
    if (!r.has_value()) return Status::Ok();
    const Timestamp ts = r->timestamp;
    // Emit first, increment after (see VectorSource::Run).
    if (!ctx->Emit(std::move(*r))) return Status::Ok();
    ++seq_;
    if (watermark_every_ > 0 && --until_wm == 0) {
      until_wm = watermark_every_;
      ctx->EmitWatermark(ts);
    }
  }
}

Status GeneratorSource::SnapshotState(BinaryWriter* w) const {
  w->WriteU64(seq_);
  return Status::Ok();
}

Status GeneratorSource::RestoreState(BinaryReader* r) {
  auto seq = r->ReadU64();
  if (!seq.ok()) return seq.status();
  seq_ = *seq;
  return Status::Ok();
}

DisorderedSource::DisorderedSource(GenFn fn, size_t disorder_window,
                                   uint64_t watermark_every, uint64_t seed)
    : fn_(std::move(fn)), disorder_window_(std::max<size_t>(disorder_window, 1)),
      watermark_every_(watermark_every), seed_(seed) {}

Status DisorderedSource::Run(SourceContext* ctx) {
  Rng rng(seed_);
  std::vector<Record> buffer;
  uint64_t seq = 0;
  uint64_t emitted = 0;
  bool exhausted = false;

  auto emit_one = [&](size_t idx) -> bool {
    std::swap(buffer[idx], buffer.back());
    Record r = std::move(buffer.back());
    buffer.pop_back();
    if (!ctx->Emit(std::move(r))) return false;
    ++emitted;
    if (watermark_every_ > 0 && emitted % watermark_every_ == 0 &&
        !buffer.empty()) {
      // Everything still buffered may yet be emitted: the safe watermark is
      // the minimum buffered timestamp.
      Timestamp wm = kMaxTimestamp;
      for (const Record& b : buffer) wm = std::min(wm, b.timestamp);
      ctx->EmitWatermark(wm);
    }
    return true;
  };

  for (;;) {
    while (!exhausted && buffer.size() < disorder_window_) {
      std::optional<Record> r = fn_(seq);
      if (!r.has_value()) {
        exhausted = true;
        break;
      }
      ++seq;
      buffer.push_back(std::move(*r));
    }
    if (buffer.empty()) return Status::Ok();
    if (!emit_one(rng.NextBelow(buffer.size()))) return Status::Ok();
  }
}

Status DisorderedSource::SnapshotState(BinaryWriter* w) const {
  (void)w;
  return Status::Unimplemented(
      "DisorderedSource is a workload tool and not checkpointable");
}

SourceFactory GeneratorSource::Factory(
    std::string name, std::function<GenFn(int subtask, int parallelism)> make,
    uint64_t watermark_every) {
  return [name = std::move(name), make = std::move(make), watermark_every](
             int subtask, int parallelism) -> std::unique_ptr<SourceFunction> {
    return std::make_unique<GeneratorSource>(
        name + "[" + std::to_string(subtask) + "]", make(subtask, parallelism),
        watermark_every);
  };
}

}  // namespace streamline
