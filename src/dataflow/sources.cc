#include "dataflow/sources.h"

#include <algorithm>

namespace streamline {

Result<SourcePoll> VectorSource::Poll(SourceContext* ctx) {
  if (pos_ >= records_.size()) return SourcePoll::kExhausted;
  // Records are contiguous, so emit whole spans: one EmitSpan per
  // watermark interval instead of one Emit per record amortizes the
  // engine's per-emission bookkeeping. Spans are capped so each poll stays
  // a bounded morsel and cancellation stays responsive when watermarks are
  // disabled.
  constexpr uint64_t kMaxSpan = 1024;
  const uint64_t until_wm =
      watermark_every_ > 0 ? watermark_every_ - pos_ % watermark_every_ : 0;
  const uint64_t remaining = records_.size() - pos_;
  uint64_t span = std::min(remaining, kMaxSpan);
  if (watermark_every_ > 0) span = std::min(span, until_wm);
  // Read the cadence timestamp before the span is moved from: a
  // moved-from record's scalar timestamp happens to survive, but don't
  // rely on it.
  const Timestamp last_ts = records_[pos_ + span - 1].timestamp;
  // Emit first, advance pos_ after: a barrier snapshot taken inside
  // EmitSpan (before any span record is pushed) must record these
  // elements as NOT yet consumed, or a restored job would skip them.
  // Moving out is safe: a restored source is a fresh instance built by
  // the factory.
  if (!ctx->EmitSpan(records_.data() + pos_, span)) {
    return SourcePoll::kExhausted;  // cancelled
  }
  pos_ += span;
  if (watermark_every_ > 0 && span == until_wm) ctx->EmitWatermark(last_ts);
  return pos_ < records_.size() ? SourcePoll::kHasMore
                                : SourcePoll::kExhausted;
}

Status VectorSource::SnapshotState(BinaryWriter* w) const {
  w->WriteU64(pos_);
  return Status::Ok();
}

Status VectorSource::RestoreState(BinaryReader* r) {
  auto pos = r->ReadU64();
  if (!pos.ok()) return pos.status();
  pos_ = *pos;
  return Status::Ok();
}

SourceFactory VectorSource::Factory(std::vector<Record> records,
                                    uint64_t watermark_every) {
  return [records = std::move(records), watermark_every](
             int subtask, int parallelism) -> std::unique_ptr<SourceFunction> {
    std::vector<Record> mine;
    for (size_t i = subtask; i < records.size();
         i += static_cast<size_t>(parallelism)) {
      mine.push_back(records[i]);
    }
    return std::make_unique<VectorSource>(std::move(mine), watermark_every);
  };
}

Result<SourcePoll> GeneratorSource::Poll(SourceContext* ctx) {
  // One division per poll restores the watermark cadence from seq_ alone,
  // which is all the checkpoint records.
  const uint64_t until_wm =
      watermark_every_ > 0 ? watermark_every_ - seq_ % watermark_every_ : 0;
  const size_t preferred = ctx->PreferredBatchSize();
  if (preferred <= 1) {
    // Record-at-a-time engine: one Emit per poll.
    std::optional<Record> r = fn_(seq_);
    if (!r.has_value()) return SourcePoll::kExhausted;
    const Timestamp ts = r->timestamp;
    // Emit first, increment after (see VectorSource::Poll).
    if (!ctx->Emit(std::move(*r))) return SourcePoll::kExhausted;
    ++seq_;
    if (watermark_every_ > 0 && until_wm == 1) ctx->EmitWatermark(ts);
    return SourcePoll::kHasMore;
  }
  // Batch engine: stage one batch in the reused scratch buffer and hand it
  // over whole -- the per-emission bookkeeping (virtual dispatch, barrier
  // and cancellation checks) is paid once per batch. seq_ advances only
  // after EmitBatch returns, so a barrier snapshot taken at the batch
  // boundary records the first unemitted sequence number and a restored
  // job regenerates exactly the unemitted suffix (fn_ is a pure function
  // of seq).
  uint64_t span = preferred;
  if (watermark_every_ > 0) span = std::min<uint64_t>(span, until_wm);
  scratch_.reserve(span);
  bool exhausted = false;
  for (uint64_t k = 0; k < span; ++k) {
    std::optional<Record> r = fn_(seq_ + k);
    if (!r.has_value()) {
      exhausted = true;
      break;
    }
    scratch_.push_back(std::move(*r));
  }
  const uint64_t n = scratch_.size();
  if (n > 0) {
    const Timestamp last_ts = scratch_[n - 1].timestamp;
    if (!ctx->EmitBatch(std::move(scratch_))) return SourcePoll::kExhausted;
    seq_ += n;
    if (watermark_every_ > 0 && until_wm == n) {
      // The batch ended exactly at the cadence point, so the last record
      // is the cadence record -- same watermark the per-record path emits.
      ctx->EmitWatermark(last_ts);
    }
  }
  return exhausted ? SourcePoll::kExhausted : SourcePoll::kHasMore;
}

Status GeneratorSource::SnapshotState(BinaryWriter* w) const {
  w->WriteU64(seq_);
  return Status::Ok();
}

Status GeneratorSource::RestoreState(BinaryReader* r) {
  auto seq = r->ReadU64();
  if (!seq.ok()) return seq.status();
  seq_ = *seq;
  return Status::Ok();
}

DisorderedSource::DisorderedSource(GenFn fn, size_t disorder_window,
                                   uint64_t watermark_every, uint64_t seed)
    : fn_(std::move(fn)), disorder_window_(std::max<size_t>(disorder_window, 1)),
      watermark_every_(watermark_every), rng_(seed) {}

Result<SourcePoll> DisorderedSource::Poll(SourceContext* ctx) {
  // Refill the shuffle buffer, then emit one uniformly chosen buffered
  // record per poll. All shuffle state lives in members, so polls resume
  // mid-shuffle no matter which thread drives them.
  while (!exhausted_ && buffer_.size() < disorder_window_) {
    std::optional<Record> r = fn_(seq_);
    if (!r.has_value()) {
      exhausted_ = true;
      break;
    }
    ++seq_;
    buffer_.push_back(std::move(*r));
  }
  if (buffer_.empty()) return SourcePoll::kExhausted;
  const size_t idx = rng_.NextBelow(buffer_.size());
  std::swap(buffer_[idx], buffer_.back());
  Record r = std::move(buffer_.back());
  buffer_.pop_back();
  if (!ctx->Emit(std::move(r))) return SourcePoll::kExhausted;
  ++emitted_;
  if (watermark_every_ > 0 && emitted_ % watermark_every_ == 0 &&
      !buffer_.empty()) {
    // Everything still buffered may yet be emitted: the safe watermark is
    // the minimum buffered timestamp.
    Timestamp wm = kMaxTimestamp;
    for (const Record& b : buffer_) wm = std::min(wm, b.timestamp);
    ctx->EmitWatermark(wm);
  }
  return SourcePoll::kHasMore;
}

Status DisorderedSource::SnapshotState(BinaryWriter* w) const {
  (void)w;
  return Status::Unimplemented(
      "DisorderedSource is a workload tool and not checkpointable");
}

SourceFactory GeneratorSource::Factory(
    std::string name, std::function<GenFn(int subtask, int parallelism)> make,
    uint64_t watermark_every) {
  return [name = std::move(name), make = std::move(make), watermark_every](
             int subtask, int parallelism) -> std::unique_ptr<SourceFunction> {
    return std::make_unique<GeneratorSource>(
        name + "[" + std::to_string(subtask) + "]", make(subtask, parallelism),
        watermark_every);
  };
}

}  // namespace streamline
