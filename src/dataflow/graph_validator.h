#ifndef STREAMLINE_DATAFLOW_GRAPH_VALIDATOR_H_
#define STREAMLINE_DATAFLOW_GRAPH_VALIDATOR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/graph.h"

namespace streamline {

/// The invariant classes the plan validator checks. Each confirmed
/// violation produces one GraphDiagnostic tagged with its rule, so tests
/// and tooling can assert on the class rather than parse messages.
enum class GraphRule {
  /// Structural defects Validate() also catches: missing factories,
  /// operators without inputs, sources with inputs, empty/sourceless graph.
  kStructure,
  /// A kHash edge with no key selector, or with neither a key_hash nor a
  /// key_field the router could hash records by.
  kHashEdgeMissingKey,
  /// The graph contains a cycle; the diagnostic names the nodes on it.
  kCycle,
  /// An event-time operator (requires_watermarks) is fed, directly or
  /// transitively, by a source that never emits watermarks: its windows
  /// would never fire.
  kWatermarkStarvation,
  /// A kForward edge between endpoints of different parallelism: the
  /// chaining contract (subtask i feeds subtask i) is unsatisfiable.
  kChainAcrossShuffle,
  /// A keyed-state operator whose input is not key-partitioned at its own
  /// parallelism: rebalance/broadcast inputs scatter a key across
  /// subtasks, and a forward relay from a hash edge established at a
  /// different parallelism rescopes the key space.
  kKeyedStatePartitioning,
  /// A node no source can reach. Sinks get a dedicated message since a
  /// dangling sink usually means a mis-wired pipeline tail.
  kUnreachable,
};

std::string_view GraphRuleToString(GraphRule rule);

/// One violation: which rule, where (node id and/or edge index, -1 when not
/// applicable), and a human-readable message naming the offending node or
/// edge endpoints.
struct GraphDiagnostic {
  GraphRule rule = GraphRule::kStructure;
  int node = -1;
  int edge = -1;
  std::string message;
};

/// Runs every rule over `graph` and returns all violations (empty when the
/// plan is sound). Unlike LogicalGraph::Validate(), which stops at the
/// first structural defect, this collects the full list so a user fixes a
/// bad plan in one round trip.
std::vector<GraphDiagnostic> CheckGraph(const LogicalGraph& graph);

/// CheckGraph folded into a Status: Ok when clean, otherwise
/// InvalidArgument whose message concatenates every diagnostic (one per
/// line, prefixed with its rule). This is the job-submission gate --
/// Job::Create calls it before building the physical plan.
Status ValidateGraph(const LogicalGraph& graph);

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_GRAPH_VALIDATOR_H_
