#include "dataflow/io.h"

#include <cstdlib>

#include "common/logging.h"

namespace streamline {
namespace {

std::string FormatValue(const Value& v) {
  switch (v.type()) {
    case DataType::kNull:
      return "";
    case DataType::kString: {
      const std::string& s = v.AsString();
      STREAMLINE_DCHECK(s.find(',') == std::string::npos &&
                        s.find('\n') == std::string::npos)
          << "CSV cells must not contain commas or newlines";
      return s;
    }
    default:
      return v.ToString();
  }
}

Result<Value> ParseCell(const std::string& cell, DataType type) {
  if (cell.empty()) return Value::Null();
  switch (type) {
    case DataType::kNull:
      return Value::Null();
    case DataType::kInt64: {
      char* end = nullptr;
      const long long v = std::strtoll(cell.c_str(), &end, 10);
      if (end == cell.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad int64 cell '" + cell + "'");
      }
      return Value(static_cast<int64_t>(v));
    }
    case DataType::kDouble: {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double cell '" + cell + "'");
      }
      return Value(v);
    }
    case DataType::kBool:
      if (cell == "true" || cell == "1") return Value(true);
      if (cell == "false" || cell == "0") return Value(false);
      return Status::InvalidArgument("bad bool cell '" + cell + "'");
    case DataType::kString:
      return Value(cell);
  }
  return Status::Internal("unknown type");
}

std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> cells;
  size_t start = 0;
  for (;;) {
    const size_t comma = line.find(',', start);
    if (comma == std::string::npos) {
      cells.push_back(line.substr(start));
      return cells;
    }
    cells.push_back(line.substr(start, comma - start));
    start = comma + 1;
  }
}

}  // namespace

std::string FormatCsvLine(const Record& record) {
  std::string line = std::to_string(record.timestamp);
  for (const Value& v : record.fields) {
    line += ',';
    line += FormatValue(v);
  }
  return line;
}

Result<Record> ParseCsvLine(const std::string& line, const Schema& schema) {
  const std::vector<std::string> cells = SplitCsv(line);
  if (cells.size() != schema.num_fields() + 1) {
    return Status::InvalidArgument(
        "CSV line has " + std::to_string(cells.size()) + " cells, schema " +
        schema.ToString() + " expects " +
        std::to_string(schema.num_fields() + 1));
  }
  Record record;
  {
    char* end = nullptr;
    record.timestamp = std::strtoll(cells[0].c_str(), &end, 10);
    if (end == cells[0].c_str() || *end != '\0') {
      return Status::InvalidArgument("bad timestamp cell '" + cells[0] + "'");
    }
  }
  record.fields.reserve(schema.num_fields());
  for (size_t i = 0; i < schema.num_fields(); ++i) {
    auto v = ParseCell(cells[i + 1], schema.field(i).type);
    if (!v.ok()) return v.status();
    record.fields.push_back(std::move(*v));
  }
  return record;
}

// ---------------------------------------------------------------------------
// CsvFileSource

CsvFileSource::CsvFileSource(std::string path, Schema schema,
                             uint64_t watermark_every)
    : path_(std::move(path)), schema_(std::move(schema)),
      watermark_every_(watermark_every) {}

Result<SourcePoll> CsvFileSource::Poll(SourceContext* ctx) {
  if (!opened_) {
    in_.open(path_);
    if (!in_.is_open()) {
      return Status::NotFound("cannot open CSV file '" + path_ + "'");
    }
    opened_ = true;
    // Skip up to the restored offset.
    std::string skip;
    for (uint64_t i = 0; i < next_line_ && std::getline(in_, skip); ++i) {
    }
  }
  // One watermark interval (or up to one batch) of lines per poll.
  const size_t preferred = ctx->PreferredBatchSize();
  size_t quota = preferred > 1 ? preferred : 64;
  if (watermark_every_ > 0) {
    quota = std::min<size_t>(
        quota, watermark_every_ - next_line_ % watermark_every_);
  }
  std::string line;
  for (size_t i = 0; i < quota; ++i) {
    if (!std::getline(in_, line)) return SourcePoll::kExhausted;
    const uint64_t line_no = next_line_;
    if (line.empty()) {
      next_line_ = line_no + 1;
      continue;
    }
    auto record = ParseCsvLine(line, schema_);
    if (!record.ok()) {
      return Status::InvalidArgument(path_ + ":" + std::to_string(line_no) +
                                     ": " + record.status().message());
    }
    const Timestamp ts = record->timestamp;
    if (!ctx->Emit(std::move(*record))) return SourcePoll::kExhausted;
    next_line_ = line_no + 1;
    if (watermark_every_ > 0 && next_line_ % watermark_every_ == 0) {
      ctx->EmitWatermark(ts);
    }
  }
  return SourcePoll::kHasMore;
}

Status CsvFileSource::SnapshotState(BinaryWriter* w) const {
  w->WriteU64(next_line_);
  return Status::Ok();
}

Status CsvFileSource::RestoreState(BinaryReader* r) {
  auto pos = r->ReadU64();
  if (!pos.ok()) return pos.status();
  next_line_ = *pos;
  return Status::Ok();
}

SourceFactory CsvFileSource::Factory(std::string path, Schema schema,
                                     uint64_t watermark_every) {
  return [path = std::move(path), schema = std::move(schema),
          watermark_every](int subtask,
                           int) -> std::unique_ptr<SourceFunction> {
    STREAMLINE_CHECK_EQ(subtask, 0) << "CSV sources are single-subtask";
    return std::make_unique<CsvFileSource>(path, schema, watermark_every);
  };
}

// ---------------------------------------------------------------------------
// CsvFileSink

CsvFileSink::CsvFileSink(std::string path)
    : path_(std::move(path)), out_(path_, std::ios::trunc) {
  STREAMLINE_CHECK(out_.is_open()) << "cannot open '" << path_ << "'";
}

Status CsvFileSink::WriteErrorLocked() {
  write_failed_ = true;
  return Status::Internal("write error on '" + path_ + "' after " +
                          std::to_string(lines_) + " lines");
}

Status CsvFileSink::Invoke(const Record& record) {
  MutexLock lock(&mu_);
  if (write_failed_) return WriteErrorLocked();
  out_ << FormatCsvLine(record) << '\n';
  if (!out_.good()) return WriteErrorLocked();
  ++lines_;
  return Status::Ok();
}

Status CsvFileSink::Close() {
  MutexLock lock(&mu_);
  if (!closed_) {
    out_.flush();
    closed_ = true;
    if (!out_.good()) write_failed_ = true;
  }
  // Sticky: a write error anywhere in the sink's life makes Close fail,
  // even when called repeatedly.
  if (write_failed_) return WriteErrorLocked();
  return Status::Ok();
}

uint64_t CsvFileSink::lines_written() const {
  MutexLock lock(&mu_);
  return lines_;
}

}  // namespace streamline
