#ifndef STREAMLINE_DATAFLOW_SOURCE_H_
#define STREAMLINE_DATAFLOW_SOURCE_H_

#include <functional>
#include <memory>
#include <string>

#include "common/record.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/time.h"

namespace streamline {

/// Handed to SourceFunction::Run; the source pushes records and watermarks
/// through it. Emit() doubles as the cancellation and checkpoint point: the
/// runtime injects pending checkpoint barriers between two emissions, which
/// is what makes source offsets consistent with downstream state.
class SourceContext {
 public:
  virtual ~SourceContext() = default;

  /// Emits a record (using record.timestamp as its event time). The callee
  /// takes ownership. Returns false when the job was cancelled: the source
  /// should return promptly.
  virtual bool Emit(Record&& record) = 0;

  /// Emits an event-time watermark: a promise that all records emitted
  /// later have ts >= wm.
  virtual void EmitWatermark(Timestamp wm) = 0;

  /// Sources that wait for external input (empty queue/log/socket) must
  /// call this periodically from their idle loop: it lets the runtime
  /// inject pending checkpoint barriers even though no records flow.
  virtual void HandleIdle() = 0;

  virtual bool IsCancelled() const = 0;
};

/// A data source. Run() drives the whole life of the source subtask: it
/// returns when the source is exhausted (bounded input -- the "data at
/// rest" case) or when cancelled (unbounded input -- "data in motion").
/// The engine makes no other distinction between batch and streaming.
class SourceFunction {
 public:
  virtual ~SourceFunction() = default;

  virtual Status Run(SourceContext* ctx) = 0;

  /// Checkpoint hooks: serialize the read position so a restored job
  /// resumes exactly where the snapshot was taken.
  virtual Status SnapshotState(BinaryWriter* w) const {
    (void)w;
    return Status::Ok();
  }
  virtual Status RestoreState(BinaryReader* r) {
    (void)r;
    return Status::Ok();
  }

  virtual std::string Name() const = 0;
};

/// Creates the source instance for one subtask; the (subtask, parallelism)
/// pair lets implementations split their input.
using SourceFactory =
    std::function<std::unique_ptr<SourceFunction>(int subtask,
                                                  int parallelism)>;

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_SOURCE_H_
