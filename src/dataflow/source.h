#ifndef STREAMLINE_DATAFLOW_SOURCE_H_
#define STREAMLINE_DATAFLOW_SOURCE_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/record.h"
#include "common/serde.h"
#include "common/status.h"
#include "common/time.h"

namespace streamline {

/// Handed to SourceFunction::Run; the source pushes records and watermarks
/// through it. Emit() doubles as the cancellation and checkpoint point: the
/// runtime injects pending checkpoint barriers between two emissions, which
/// is what makes source offsets consistent with downstream state.
class SourceContext {
 public:
  virtual ~SourceContext() = default;

  /// Emits a record (using record.timestamp as its event time). The callee
  /// takes ownership. Returns false when the job was cancelled: the source
  /// should return promptly.
  virtual bool Emit(Record&& record) = 0;

  /// Span twin of Emit(): hands `n` records (moved from) to the engine,
  /// equivalent to Emit()-ing each in order. Sources that hold records
  /// contiguously (data at rest) should prefer this: the engine amortizes
  /// its per-emission bookkeeping -- cancellation, checkpoint-barrier
  /// injection, batch-boundary checks -- over the span instead of paying
  /// it per record. Barriers are injected at span boundaries, which is
  /// still "between two emissions"; keep spans modest (the watermark
  /// cadence or a few batches) so cancellation stays responsive.
  virtual bool EmitSpan(Record* records, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (!Emit(std::move(records[i]))) return false;
    }
    return true;
  }

  /// Hands a whole staged batch to the engine, equivalent to Emit()-ing
  /// each record in order. The batch is drained: on return the vector is
  /// empty (usually with its capacity preserved -- the engine threads the
  /// same vector through the chain), so a source can stage into one
  /// scratch buffer and reuse it every batch. Stage at most
  /// PreferredBatchSize() records per call; with a preferred size of 1
  /// use plain Emit() instead.
  virtual bool EmitBatch(std::vector<Record>&& batch) {
    for (Record& r : batch) {
      if (!Emit(std::move(r))) {
        batch.clear();
        return false;
      }
    }
    batch.clear();
    return true;
  }

  /// How many records the engine would like per EmitBatch call: the job's
  /// configured batch size on the batch path, 1 when the engine runs
  /// record-at-a-time (then EmitBatch gains nothing over Emit).
  virtual size_t PreferredBatchSize() const { return 1; }

  /// Emits an event-time watermark: a promise that all records emitted
  /// later have ts >= wm.
  virtual void EmitWatermark(Timestamp wm) = 0;

  /// Sources that wait for external input (empty queue/log/socket) must
  /// call this periodically from their idle loop: it lets the runtime
  /// inject pending checkpoint barriers even though no records flow.
  virtual void HandleIdle() = 0;

  virtual bool IsCancelled() const = 0;
};

/// What one SourceFunction::Poll call accomplished.
enum class SourcePoll {
  /// Emitted data (or made progress); poll again immediately.
  kHasMore,
  /// Nothing available right now (empty queue/log/socket); re-poll after a
  /// short delay. Only unbounded inputs waiting on external producers
  /// return this.
  kIdle,
  /// Bounded input fully emitted (the "data at rest" case), or emission
  /// was cut short by cancellation; the source subtask finishes.
  kExhausted,
};

/// A data source, written as a step function: each Poll() emits a bounded
/// amount of data -- at most about one batch -- and returns, keeping all
/// read position in member state (which is also what the checkpoint hooks
/// serialize). The engine drives Poll differently per execution mode: the
/// morsel scheduler runs a few polls per morsel and re-schedules, while
/// thread-per-task mode loops Poll on a dedicated thread via Run(). The
/// engine makes no other distinction between batch and streaming; an
/// unbounded source simply never returns kExhausted.
class SourceFunction {
 public:
  virtual ~SourceFunction() = default;

  /// Emits at most about one batch. When an Emit/EmitSpan/EmitBatch call
  /// returns false (cancellation), stop emitting and return kExhausted.
  virtual Result<SourcePoll> Poll(SourceContext* ctx) = 0;

  /// Drives Poll() to exhaustion or cancellation on the calling thread
  /// (thread-per-task mode). Non-virtual: sources implement Poll only.
  Status Run(SourceContext* ctx) {
    for (;;) {
      if (ctx->IsCancelled()) return Status::Ok();
      Result<SourcePoll> polled = Poll(ctx);
      if (!polled.ok()) return polled.status();
      switch (*polled) {
        case SourcePoll::kHasMore:
          break;
        case SourcePoll::kIdle:
          // HandleIdle lets the runtime inject pending checkpoint barriers
          // while no records flow; the sleep bounds the re-poll spin.
          ctx->HandleIdle();
          std::this_thread::sleep_for(std::chrono::microseconds(200));
          break;
        case SourcePoll::kExhausted:
          return Status::Ok();
      }
    }
  }

  /// Checkpoint hooks: serialize the read position so a restored job
  /// resumes exactly where the snapshot was taken.
  virtual Status SnapshotState(BinaryWriter* w) const {
    (void)w;
    return Status::Ok();
  }
  virtual Status RestoreState(BinaryReader* r) {
    (void)r;
    return Status::Ok();
  }

  virtual std::string Name() const = 0;
};

/// Creates the source instance for one subtask; the (subtask, parallelism)
/// pair lets implementations split their input.
using SourceFactory =
    std::function<std::unique_ptr<SourceFunction>(int subtask,
                                                  int parallelism)>;

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_SOURCE_H_
