#include "dataflow/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "common/random.h"

namespace streamline {

JobSupervisor::JobSupervisor(const LogicalGraph* graph, JobOptions options,
                             RestartPolicy policy)
    : graph_(graph), options_(std::move(options)), policy_(policy),
      jitter_rng_(policy.jitter_seed) {
  if (options_.snapshot_store == nullptr) {
    options_.snapshot_store = std::make_shared<SnapshotStore>();
  }
  store_ = options_.snapshot_store;
}

uint64_t JobSupervisor::PickRestoreCheckpoint(
    const std::vector<uint64_t>& bad) const {
  std::vector<uint64_t> candidates = store_->CompletedCheckpoints();
  // A caller-provided starting checkpoint competes like any completed one.
  if (options_.restore_from_checkpoint != 0) {
    candidates.push_back(options_.restore_from_checkpoint);
  }
  uint64_t best = 0;
  for (uint64_t id : candidates) {
    if (id > best &&
        std::find(bad.begin(), bad.end(), id) == bad.end()) {
      best = id;
    }
  }
  return best;
}

int64_t JobSupervisor::BackoffMs(int restart_number) {
  double ms = static_cast<double>(policy_.initial_backoff_ms) *
              std::pow(policy_.backoff_multiplier,
                       std::max(0, restart_number - 1));
  ms = std::min(ms, static_cast<double>(policy_.max_backoff_ms));
  if (policy_.jitter > 0) {
    // Seeded jitter: deterministic for tests, still decorrelates restart
    // storms when several supervisors share a failing dependency.
    ms *= 1.0 + policy_.jitter * (2.0 * jitter_rng_.NextDouble() - 1.0);
  }
  return std::max<int64_t>(0, static_cast<int64_t>(ms));
}

void JobSupervisor::InterruptibleSleep(int64_t ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      MutexLock lock(&mu_);
      if (cancelled_) return;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

void JobSupervisor::Cancel() {
  MutexLock lock(&mu_);
  cancelled_ = true;
  if (current_ != nullptr) current_->Cancel();
}

Status JobSupervisor::Run() {
  // Restore checkpoints that failed to load this run (corrupt entries,
  // incompatible state): skipped in favor of the next-older candidate.
  std::vector<uint64_t> bad_checkpoints;
  // Failure timestamps inside the circuit-breaker window.
  std::deque<std::chrono::steady_clock::time_point> failure_times;
  Status last_failure = Status::Ok();

  for (;;) {
    {
      MutexLock lock(&mu_);
      if (cancelled_) {
        return last_failure.ok()
                   ? Status::Cancelled("supervision cancelled")
                   : last_failure;
      }
    }

    const uint64_t restore = PickRestoreCheckpoint(bad_checkpoints);
    JobOptions opts = options_;
    opts.restore_from_checkpoint = restore;
    if (stats_.restarts > 0 || !stats_.failures.empty()) {
      stats_.restored_from.push_back(restore);
    }

    auto job = Job::Create(*graph_, opts);
    if (!job.ok()) {
      if (restore != 0) {
        // This checkpoint cannot be loaded (corruption surfaces here, via
        // FileSnapshotStore::Get). Blacklist it and immediately try the
        // next-older one -- not counted against the restart budget.
        LOG_WARNING << "restore from checkpoint " << restore
                 << " failed: " << job.status().ToString()
                 << "; falling back";
        bad_checkpoints.push_back(restore);
        if (!stats_.restored_from.empty()) stats_.restored_from.pop_back();
        continue;
      }
      return job.status();  // fresh start cannot be built: terminal
    }

    {
      MutexLock lock(&mu_);
      current_ = job->get();
    }
    const Status run_status = (*job)->Run();
    {
      MutexLock lock(&mu_);
      current_ = nullptr;
    }
    if (run_status.ok()) return Status::Ok();

    last_failure = run_status;
    stats_.failures.push_back(run_status.ToString());
    LOG_WARNING << "supervised job failed (attempt "
             << stats_.failures.size() << "): " << run_status.ToString();

    // Circuit breaker: too many failures within the window means retrying
    // is pointless (a persistent fault, not a transient one).
    if (policy_.circuit_breaker_failures > 0) {
      const auto now = std::chrono::steady_clock::now();
      failure_times.push_back(now);
      const auto window =
          std::chrono::milliseconds(policy_.circuit_breaker_window_ms);
      while (!failure_times.empty() && now - failure_times.front() > window) {
        failure_times.pop_front();
      }
      if (static_cast<int>(failure_times.size()) >
          policy_.circuit_breaker_failures) {
        stats_.circuit_broken = true;
        return Status(run_status.code(),
                      "circuit breaker open after " +
                          std::to_string(failure_times.size()) +
                          " failures in " +
                          std::to_string(policy_.circuit_breaker_window_ms) +
                          "ms: " + run_status.message());
      }
    }

    if (stats_.restarts >= policy_.max_restarts) {
      return Status(run_status.code(),
                    "job failed after " + std::to_string(stats_.restarts) +
                        " restarts: " + run_status.message());
    }
    ++stats_.restarts;
    InterruptibleSleep(BackoffMs(stats_.restarts));
  }
}

}  // namespace streamline
