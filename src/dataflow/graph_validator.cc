#include "dataflow/graph_validator.h"

#include <deque>
#include <unordered_set>
#include <vector>

namespace streamline {
namespace {

std::string NodeRef(const LogicalGraph& g, int id) {
  return "'" + g.node(id).name + "' (node " + std::to_string(id) + ")";
}

std::string EdgeRef(const LogicalGraph& g, int edge_index) {
  const GraphEdge& e = g.edges()[edge_index];
  return "edge " + std::to_string(edge_index) + " " + g.node(e.from).name +
         " -> " + g.node(e.to).name;
}

void CheckStructure(const LogicalGraph& g,
                    std::vector<GraphDiagnostic>& out) {
  if (g.nodes().empty()) {
    out.push_back({GraphRule::kStructure, -1, -1, "graph is empty"});
    return;
  }
  bool has_source = false;
  for (const GraphNode& n : g.nodes()) {
    if (n.is_source) {
      has_source = true;
      if (!n.source_factory) {
        out.push_back({GraphRule::kStructure, n.id, -1,
                       "source " + NodeRef(g, n.id) + " has no factory"});
      }
      if (!g.InEdges(n.id).empty()) {
        out.push_back({GraphRule::kStructure, n.id, -1,
                       "source " + NodeRef(g, n.id) + " has inputs"});
      }
    } else {
      if (!n.op_factory) {
        out.push_back({GraphRule::kStructure, n.id, -1,
                       "operator " + NodeRef(g, n.id) + " has no factory"});
      }
      if (g.InEdges(n.id).empty()) {
        out.push_back({GraphRule::kStructure, n.id, -1,
                       "operator " + NodeRef(g, n.id) + " has no inputs"});
      }
    }
  }
  if (!has_source) {
    out.push_back({GraphRule::kStructure, -1, -1, "graph has no source"});
  }
}

void CheckHashEdges(const LogicalGraph& g,
                    std::vector<GraphDiagnostic>& out) {
  for (size_t i = 0; i < g.edges().size(); ++i) {
    const GraphEdge& e = g.edges()[i];
    if (e.scheme != PartitionScheme::kHash) continue;
    if (e.key == nullptr) {
      out.push_back({GraphRule::kHashEdgeMissingKey, -1, static_cast<int>(i),
                     EdgeRef(g, static_cast<int>(i)) +
                         " is hash-partitioned but has no key selector"});
    } else if (e.key_hash == nullptr && e.key_field < 0) {
      out.push_back({GraphRule::kHashEdgeMissingKey, -1, static_cast<int>(i),
                     EdgeRef(g, static_cast<int>(i)) +
                         " is hash-partitioned but has neither a key hash "
                         "function nor a key field for the router"});
    }
  }
}

void CheckAcyclic(const LogicalGraph& g, std::vector<GraphDiagnostic>& out) {
  const std::vector<int> order = g.TopologicalOrder();
  if (order.size() == g.nodes().size()) return;
  std::unordered_set<int> sorted(order.begin(), order.end());
  std::string cyclic;
  int witness = -1;
  for (const GraphNode& n : g.nodes()) {
    if (sorted.count(n.id)) continue;
    if (witness < 0) witness = n.id;
    if (!cyclic.empty()) cyclic += ", ";
    cyclic += NodeRef(g, n.id);
  }
  out.push_back({GraphRule::kCycle, witness, -1,
                 "graph contains a cycle through " + cyclic});
}

/// Node ids reachable downstream of `start` (excluding `start` itself
/// unless it sits on a cycle back to itself).
std::vector<bool> ReachableFrom(const LogicalGraph& g, int start) {
  std::vector<bool> seen(g.nodes().size(), false);
  std::deque<int> frontier{start};
  while (!frontier.empty()) {
    const int id = frontier.front();
    frontier.pop_front();
    for (const GraphEdge* e : g.OutEdges(id)) {
      if (!seen[e->to]) {
        seen[e->to] = true;
        frontier.push_back(e->to);
      }
    }
  }
  return seen;
}

void CheckWatermarks(const LogicalGraph& g,
                     std::vector<GraphDiagnostic>& out) {
  for (const GraphNode& src : g.nodes()) {
    if (!src.is_source || src.traits.emits_watermarks) continue;
    const std::vector<bool> downstream = ReachableFrom(g, src.id);
    for (const GraphNode& n : g.nodes()) {
      if (!downstream[n.id] || !n.traits.requires_watermarks) continue;
      out.push_back(
          {GraphRule::kWatermarkStarvation, n.id, -1,
           "event-time operator " + NodeRef(g, n.id) +
               " is downstream of source " + NodeRef(g, src.id) +
               ", which never emits watermarks; its event-time results "
               "would never fire"});
    }
  }
}

void CheckForwardEdges(const LogicalGraph& g,
                       std::vector<GraphDiagnostic>& out) {
  for (size_t i = 0; i < g.edges().size(); ++i) {
    const GraphEdge& e = g.edges()[i];
    if (e.scheme != PartitionScheme::kForward) continue;
    const int pf = g.node(e.from).parallelism;
    const int pt = g.node(e.to).parallelism;
    if (pf == pt) continue;
    out.push_back({GraphRule::kChainAcrossShuffle, -1, static_cast<int>(i),
                   EdgeRef(g, static_cast<int>(i)) + " is forward but " +
                       g.node(e.from).name + " has parallelism " +
                       std::to_string(pf) + " and " + g.node(e.to).name +
                       " has parallelism " + std::to_string(pt) +
                       "; forward edges (and operator chains) cannot cross "
                       "a parallelism change -- use a shuffle edge"});
  }
}

/// Walks upstream from `edge` through kForward edges until it finds the
/// partitioning that actually feeds the chain. Returns the edge index of
/// the establishing non-forward edge, or -1 when the chain starts at a
/// source (records arrive in source order, not key-partitioned).
int TracePartitionOrigin(const LogicalGraph& g, const GraphEdge* edge) {
  std::unordered_set<int> visited;
  while (edge->scheme == PartitionScheme::kForward) {
    if (!visited.insert(edge->from).second) return -1;  // forward cycle
    const std::vector<const GraphEdge*> ins = g.InEdges(edge->from);
    if (ins.empty()) return -1;  // reached a source
    // A forward chain with several inputs is itself malformed; trace the
    // first input and let the other rules report the rest.
    edge = ins[0];
  }
  for (size_t i = 0; i < g.edges().size(); ++i) {
    if (&g.edges()[i] == edge) return static_cast<int>(i);
  }
  return -1;
}

void CheckKeyedState(const LogicalGraph& g,
                     std::vector<GraphDiagnostic>& out) {
  for (const GraphNode& n : g.nodes()) {
    if (!n.traits.keyed_state) continue;
    for (const GraphEdge* in : g.InEdges(n.id)) {
      if (in->scheme == PartitionScheme::kHash) continue;  // sound
      if (in->scheme == PartitionScheme::kRebalance ||
          in->scheme == PartitionScheme::kBroadcast) {
        out.push_back(
            {GraphRule::kKeyedStatePartitioning, n.id, -1,
             "keyed-state operator " + NodeRef(g, n.id) + " is fed by a " +
                 std::string(PartitionSchemeToString(in->scheme)) +
                 " edge from " + NodeRef(g, in->from) +
                 "; records of one key would scatter across subtasks -- "
                 "key-partition the input with a hash edge"});
        continue;
      }
      // kForward: legal only as a relay of an upstream hash partitioning
      // established at the same parallelism.
      const int origin = TracePartitionOrigin(g, in);
      if (origin < 0 ||
          g.edges()[origin].scheme != PartitionScheme::kHash) {
        out.push_back(
            {GraphRule::kKeyedStatePartitioning, n.id, -1,
             "keyed-state operator " + NodeRef(g, n.id) +
                 " is fed by a forward edge from " + NodeRef(g, in->from) +
                 " with no hash partitioning anywhere upstream; its input "
                 "is not key-partitioned"});
      } else if (g.node(g.edges()[origin].to).parallelism != n.parallelism) {
        out.push_back(
            {GraphRule::kKeyedStatePartitioning, n.id, -1,
             "keyed-state operator " + NodeRef(g, n.id) +
                 " has parallelism " + std::to_string(n.parallelism) +
                 " but its key partitioning was established by " +
                 EdgeRef(g, origin) + " at parallelism " +
                 std::to_string(g.node(g.edges()[origin].to).parallelism) +
                 "; the key space would be rescoped in flight"});
      }
    }
  }
}

void CheckReachability(const LogicalGraph& g,
                       std::vector<GraphDiagnostic>& out) {
  std::vector<bool> reached(g.nodes().size(), false);
  std::deque<int> frontier;
  for (const GraphNode& n : g.nodes()) {
    if (n.is_source) {
      reached[n.id] = true;
      frontier.push_back(n.id);
    }
  }
  while (!frontier.empty()) {
    const int id = frontier.front();
    frontier.pop_front();
    for (const GraphEdge* e : g.OutEdges(id)) {
      if (!reached[e->to]) {
        reached[e->to] = true;
        frontier.push_back(e->to);
      }
    }
  }
  for (const GraphNode& n : g.nodes()) {
    if (reached[n.id]) continue;
    // Nodes with no inputs at all are already reported by kStructure;
    // repeat only the ones wired to an island of dead upstreams.
    if (g.InEdges(n.id).empty()) continue;
    if (n.traits.is_sink) {
      out.push_back({GraphRule::kUnreachable, n.id, -1,
                     "sink " + NodeRef(g, n.id) +
                         " is reachable from no source; nothing will ever "
                         "be written to it"});
    } else {
      out.push_back({GraphRule::kUnreachable, n.id, -1,
                     "operator " + NodeRef(g, n.id) +
                         " is reachable from no source"});
    }
  }
}

}  // namespace

std::string_view GraphRuleToString(GraphRule rule) {
  switch (rule) {
    case GraphRule::kStructure:
      return "structure";
    case GraphRule::kHashEdgeMissingKey:
      return "hash-edge-missing-key";
    case GraphRule::kCycle:
      return "cycle";
    case GraphRule::kWatermarkStarvation:
      return "watermark-starvation";
    case GraphRule::kChainAcrossShuffle:
      return "chain-across-shuffle";
    case GraphRule::kKeyedStatePartitioning:
      return "keyed-state-partitioning";
    case GraphRule::kUnreachable:
      return "unreachable";
  }
  return "unknown";
}

std::vector<GraphDiagnostic> CheckGraph(const LogicalGraph& graph) {
  std::vector<GraphDiagnostic> out;
  CheckStructure(graph, out);
  if (!graph.nodes().empty()) {
    CheckHashEdges(graph, out);
    CheckAcyclic(graph, out);
    CheckWatermarks(graph, out);
    CheckForwardEdges(graph, out);
    CheckKeyedState(graph, out);
    CheckReachability(graph, out);
  }
  return out;
}

Status ValidateGraph(const LogicalGraph& graph) {
  const std::vector<GraphDiagnostic> diags = CheckGraph(graph);
  if (diags.empty()) return Status::Ok();
  std::string message = "plan validation failed:";
  for (const GraphDiagnostic& d : diags) {
    message += "\n  [";
    message += GraphRuleToString(d.rule);
    message += "] ";
    message += d.message;
  }
  return Status::InvalidArgument(message);
}

}  // namespace streamline
