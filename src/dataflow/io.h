#ifndef STREAMLINE_DATAFLOW_IO_H_
#define STREAMLINE_DATAFLOW_IO_H_

#include <fstream>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/schema.h"
#include "common/thread_annotations.h"
#include "dataflow/sink.h"
#include "dataflow/source.h"

namespace streamline {

/// Renders a record as a CSV line: "timestamp,field0,field1,...".
/// No quoting/escaping is performed: string fields must not contain commas
/// or newlines (checked with a CHECK in debug builds).
std::string FormatCsvLine(const Record& record);

/// Parses one CSV line against `schema` (timestamp first, then one column
/// per field). Empty cells become null values.
Result<Record> ParseCsvLine(const std::string& line, const Schema& schema);

/// Bounded source reading CSV lines from a file ("data at rest" on disk).
/// The line offset is checkpointed, so restored jobs resume mid-file.
class CsvFileSource : public SourceFunction {
 public:
  CsvFileSource(std::string path, Schema schema,
                uint64_t watermark_every = 64);

  Result<SourcePoll> Poll(SourceContext* ctx) override;
  Status SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  std::string Name() const override { return "csv:" + path_; }

  /// Single-subtask factory (files are not split).
  static SourceFactory Factory(std::string path, Schema schema,
                               uint64_t watermark_every = 64);

 private:
  std::string path_;
  Schema schema_;
  uint64_t watermark_every_;
  uint64_t next_line_ = 0;
  // Poll-local read state: the stream opens lazily on the first poll
  // (after any checkpoint restore has set next_line_) and lives across
  // polls. The Poll contract serializes access, so no lock is needed.
  std::ifstream in_;
  bool opened_ = false;
};

/// Sink appending records as CSV lines; thread-safe, flushed on Close.
/// Stream write errors (full disk, closed fd) are never swallowed: Invoke
/// fails the job as soon as the stream goes bad, and Close re-reports the
/// error (idempotently) so no success is claimed for lost output.
class CsvFileSink : public SinkFunction {
 public:
  explicit CsvFileSink(std::string path);

  Status Invoke(const Record& record) override;
  Status Close() override;
  std::string Name() const override { return "csv:" + path_; }

  uint64_t lines_written() const;

 private:
  /// Sets the sticky flag, builds the status.
  Status WriteErrorLocked() STREAMLINE_REQUIRES(mu_);

  std::string path_;
  mutable Mutex mu_;
  std::ofstream out_ STREAMLINE_GUARDED_BY(mu_);
  uint64_t lines_ STREAMLINE_GUARDED_BY(mu_) = 0;
  bool closed_ STREAMLINE_GUARDED_BY(mu_) = false;
  bool write_failed_ STREAMLINE_GUARDED_BY(mu_) = false;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_IO_H_
