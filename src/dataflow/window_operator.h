#ifndef STREAMLINE_DATAFLOW_WINDOW_OPERATOR_H_
#define STREAMLINE_DATAFLOW_WINDOW_OPERATOR_H_

#include <algorithm>
#include <array>
#include <cstddef>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "agg/slicing_aggregator.h"
#include "common/flat_hash_map.h"
#include "dataflow/changelog.h"
#include "dataflow/operator.h"
#include "dataflow/query_registry.h"
#include "window/dyn_aggregate.h"
#include "window/window_fn.h"

namespace streamline {

/// Adapts the runtime DynAggregate to the algebraic-aggregate concept used
/// by the slicing machinery, so the engine's windowed operators run on the
/// exact same Cutty code path the micro-benchmarks measure.
struct DynAggAdapter {
  struct Input {
    Value value;
    Timestamp ts = 0;
  };
  using Partial = DynPartial;
  using Output = Value;
  static constexpr bool kInvertible = false;  // conservative: kind-dependent
  static constexpr bool kCommutative = true;

  explicit DynAggAdapter(DynAggKind kind = DynAggKind::kSum) : dyn(kind) {}

  Partial Identity() const { return dyn.Identity(); }
  Partial Lift(const Input& in) const { return dyn.Lift(in.value, in.ts); }
  Partial Combine(const Partial& a, const Partial& b) const {
    return dyn.Combine(a, b);
  }
  Output Lower(const Partial& p) const { return dyn.Lower(p); }

  /// Contiguous fold kernel for the hot numeric kinds: the per-element
  /// Combine's branches (validity check, kind switch) are hoisted out of
  /// the loop and the accumulator lives in registers. Bit-identical to the
  /// sequential `acc = Combine(acc, Lift(v))` chain -- the batch vs
  /// per-record equivalence tests compare sink output bytes. Keep-one kinds
  /// (variance/first/last/argmax) fall back to that chain unchanged.
  void FoldSpan(Partial* acc, const Input* values, size_t n) const {
    if (n == 0) return;
    size_t i = 0;
    if (!acc->valid) {
      // Combine(invalid, y) returns y exactly; take the first element
      // directly (folding into 0.0 could flip the sign of -0.0).
      *acc = dyn.Lift(values[0].value, values[0].ts);
      i = 1;
      if (i == n) return;
    }
    const size_t start = i;
    switch (dyn.kind()) {
      case DynAggKind::kSum:
      case DynAggKind::kAvg: {
        double s = acc->a;
        Timestamp ts = acc->ts;
        for (; i < n; ++i) {
          s = s + values[i].value.ToDouble();
          ts = std::max(ts, values[i].ts);
        }
        acc->a = s;
        acc->ts = ts;
        break;
      }
      case DynAggKind::kCount: {
        Timestamp ts = acc->ts;
        for (; i < n; ++i) ts = std::max(ts, values[i].ts);
        acc->a = acc->a + 0.0;  // matches x.a + y.a with y.a == 0
        acc->ts = ts;
        break;
      }
      case DynAggKind::kMin: {
        double m = acc->a;
        Timestamp ts = acc->ts;
        for (; i < n; ++i) {
          m = std::min(m, values[i].value.ToDouble());
          ts = std::max(ts, values[i].ts);
        }
        acc->a = m;
        acc->ts = ts;
        break;
      }
      case DynAggKind::kMax: {
        double m = acc->a;
        Timestamp ts = acc->ts;
        for (; i < n; ++i) {
          m = std::max(m, values[i].value.ToDouble());
          ts = std::max(ts, values[i].ts);
        }
        acc->a = m;
        acc->ts = ts;
        break;
      }
      default:
        for (; i < n; ++i) {
          *acc = dyn.Combine(*acc, dyn.Lift(values[i].value, values[i].ts));
        }
        return;  // Combine maintained n itself
    }
    acc->n += static_cast<int64_t>(n - start);
  }

  DynAggregate dyn;
};

/// How the windowed operator maintains per-window state.
enum class WindowBackend : uint8_t {
  kShared,  // Cutty slicing with a shared FlatFAT slice store (default)
  kEager,   // one partial per open window (pre-sharing state of practice)
};

/// Configuration of a keyed event-time window aggregation.
struct WindowAggSpec {
  /// Key extractor; nullptr aggregates the whole stream under one key.
  KeySelector key;
  /// Index of the aggregated field in the input record.
  size_t value_field = 0;
  DynAggKind agg_kind = DynAggKind::kSum;
  /// Prototype window definitions; each key gets fresh clones. Multiple
  /// entries = multi-query sharing over the same slice store.
  std::vector<std::shared_ptr<const WindowFunction>> windows;
  WindowBackend backend = WindowBackend::kShared;
  /// Passed as payload to content-sensitive window functions; nullptr
  /// passes a null Value.
  std::function<Value(const Record&)> payload;
  /// Tolerated lateness beyond the upstream watermark: records up to this
  /// much older than the watermark are still included, at the price of
  /// window results firing `allowed_lateness` later (the operator holds
  /// its internal event-time clock back by this amount).
  Duration allowed_lateness = 0;
  /// Standing-query registry this operator serves (kShared backend only).
  /// Subtasks drain the registry's attach/detach command log at watermark
  /// boundaries, so queries come and go while the job runs; dynamic-query
  /// results carry the registry query id in output field 3.
  std::shared_ptr<QueryRegistry> registry;
};

/// Keyed event-time windowed aggregation operator.
///
/// Out-of-order robustness: records are buffered until the watermark passes
/// them, then applied in timestamp order -- so upstream parallelism (which
/// interleaves channels arbitrarily) never breaks window contents.
///
/// Output records: [key, window_start, window_end, query_index, result]
/// with timestamp = window_end - 1 (the last instant inside the window),
/// so downstream windowed consumers see results in the period they
/// describe.
class WindowAggOperator : public Operator {
 public:
  WindowAggOperator(std::string name, WindowAggSpec spec);
  ~WindowAggOperator() override;

  Status Open(const OperatorContext& ctx) override;
  void ProcessRecord(int input, Record&& record, Collector* out) override;
  void ProcessBatch(int input, std::vector<Record>&& batch,
                    Collector* out) override;
  void ProcessWatermark(Timestamp wm, Collector* out) override;
  void OnEndOfInput(Collector* out) override;
  Status SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  bool SupportsIncrementalState() const override { return true; }
  void EnableIncrementalState() override { changelog_.Enable(); }
  Status SnapshotDelta(ChangelogSink* sink) override;
  Status ApplyDelta(BinaryReader* r) override;
  void ResetDelta() override { changelog_.Clear(); }
  std::string Name() const override { return name_; }

  /// Aggregation work counters summed over all keys (shared backend only).
  AggStats SharedStats() const;
  size_t num_keys() const { return keys_.size(); }

 private:
  using SharedAgg = SlicingAggregator<DynAggAdapter, FlatFatStore<DynAggAdapter>>;

  struct EagerQueryState {
    std::unique_ptr<WindowFunction> wf;  // used only for periodic params
    Duration range = 0;
    Duration slide = 0;
    Timestamp origin = 0;
    /// Open windows sorted by Window::operator< (end, then start); small and
    /// short-lived, so a sorted vector beats a node-based map.
    std::vector<std::pair<Window, DynPartial>> open;
  };

  /// One registry-attached query, as applied by this subtask. The table is
  /// a pure function of the command-log prefix [1, applied_seq_] (plus the
  /// watermark at each application), so it is identical across subtasks and
  /// across checkpoint restore/replay. Entries are append-only -- a detach
  /// flips `active` but keeps the entry, because per-key slot indices and
  /// snapshot layouts are derived from entry positions.
  struct DynQuery {
    uint64_t id = 0;
    QueryDescriptor desc;
    QueryPlacement placement = QueryPlacement::kShared;
    bool active = true;
    /// Operator watermark when the attach was applied; standalone queries
    /// only serve windows beginning at or after it (earlier windows would
    /// be missing the records applied before the attach).
    Timestamp attach_wm = kMinTimestamp;
  };

  /// Per-key open-window partials of one standalone dynamic query
  /// (positionally aligned with the standalone entries of dyn_queries_,
  /// holes included).
  struct StandaloneState {
    std::vector<std::pair<Window, DynPartial>> open;  // sorted by Window <
  };

  struct KeyState {
    // kShared backend.
    std::unique_ptr<SharedAgg> shared;
    // kEager backend.
    std::vector<EagerQueryState> eager;
    // Registry-attached standalone queries (kShared backend only).
    std::vector<StandaloneState> standalone;
    uint64_t standalone_fires = 0;
  };

  KeyState* GetOrCreateKey(const Value& key, uint64_t hash);
  void ApplyElement(const Value& key, KeyState* ks, const Record& record);
  void AdvanceKeyWatermark(const Value& key, KeyState* ks, Timestamp wm);
  void SnapshotKeyState(const KeyState& ks, BinaryWriter* w) const;
  Status RestoreKeyState(KeyState* ks, BinaryReader* r);
  /// Cheap serialized-state fingerprint used to detect keys mutated by a
  /// watermark advance (window fires, slice eviction) without walking the
  /// aggregation state. Shared backend: any firing bumps stats().fires, any
  /// slice churn moves slices_created or the store size, and every other
  /// OnWatermark-reachable mutation is gated on one of those. Eager
  /// backend: EagerFire only erases, so the total open-window count
  /// strictly decreases whenever anything fired.
  std::array<uint64_t, 4> KeyFingerprint(const KeyState& ks) const;
  void EmitResult(const Value& key, size_t query, const Window& w,
                  const Value& result);
  void EagerFire(const Value& key, KeyState* ks, Timestamp wm);
  void UpdateStateGauges();

  // -- standing-query registry integration --------------------------------
  /// Polls the registry command log and applies new attach/detach commands
  /// to every key; called at the end of each watermark (a deterministic
  /// point of the event-time order). Acks the applied prefix.
  void DrainRegistryCommands();
  /// Structural application of one dyn-table entry to live keys. Shared by
  /// the live drain and by checkpoint-delta replay (which reconciles the
  /// key layout before re-restoring the keys the epoch touched).
  void ApplyDynAttach(const DynQuery& dq, uint64_t* slices_freed);
  void ApplyDynDetach(size_t index, uint64_t* slices_freed);
  /// Slicer slot of dyn entry `index` (spec windows first, then one slot
  /// per shared dyn entry in table order, detached holes included).
  size_t SharedSlotOfDyn(size_t index) const;
  /// Position of dyn entry `index` among standalone entries.
  size_t StandaloneIndexOfDyn(size_t index) const;
  /// Registers the dyn-table queries on a freshly created key (slot layout
  /// must match the table for snapshots to line up).
  void InitDynStateForKey(const Value& key, KeyState* ks);
  void FoldStandalone(const Value& key, KeyState* ks, const Record& record);
  void FireStandalone(const Value& key, KeyState* ks, Timestamp wm);
  uint64_t TotalStoredSlices() const;
  void WriteDynTable(BinaryWriter* w) const;
  Status ReadDynTable(BinaryReader* r, std::vector<DynQuery>* table,
                      uint64_t* applied_seq) const;
  /// Replaces the dyn table with `table`, structurally retrofitting live
  /// keys (new entries attached, newly inactive entries detached).
  void ReconcileDynTable(std::vector<DynQuery> table, uint64_t applied_seq);

  std::string name_;
  WindowAggSpec spec_;
  DynAggAdapter adapter_;

  using PendingEntry = std::pair<Record, uint64_t>;
  /// Min-heap order on (timestamp, arrival seq) -- `a` sorts after `b`.
  static bool PendingAfter(const PendingEntry& a, const PendingEntry& b) {
    if (a.first.timestamp != b.first.timestamp) {
      return a.first.timestamp > b.first.timestamp;
    }
    return a.second > b.second;
  }

  // Reorder buffer: records not yet covered by the watermark, kept as a
  // binary min-heap on (ts, seq). A watermark pops exactly the records it
  // covers, in apply order; nothing ever costs O(buffer) per watermark.
  // That bound matters: one slow input channel holds the min-watermark
  // back while fast channels keep buffering, so the buffer can reach
  // millions of records -- per-watermark sorting (or merging, or erasing a
  // prefix) of the whole buffer turns that stall into quadratic dispatch
  // cost and starves the scheduler.
  std::vector<PendingEntry> pending_;
  // Covered records popped off the heap, in (ts, seq) order; capacity
  // persists across watermarks.
  std::vector<PendingEntry> apply_scratch_;
  // Scratch for contiguous same-key runs handed to the aggregator's batch
  // entry point (shared backend only); capacity persists across watermarks.
  std::vector<Timestamp> run_ts_;
  std::vector<DynAggAdapter::Input> run_in_;
  uint64_t seq_ = 0;
  Timestamp current_wm_ = kMinTimestamp;

  // Standing-query state (empty without a registry). active_standalone_
  // gates the per-record standalone fold -- and disables run batching,
  // which bypasses ApplyElement.
  std::vector<DynQuery> dyn_queries_;
  uint64_t applied_seq_ = 0;
  size_t active_standalone_ = 0;
  int subtask_index_ = 0;
  // The job MetricsRegistry handed to the registry in Open; unbound in the
  // destructor so a registry outliving this job never writes into it.
  MetricsRegistry* bound_metrics_ = nullptr;

  FlatHashMap<Value, KeyState> keys_;
  KeyedChangelog changelog_;
  // Hash of the synthetic key used when spec_.key is null (global windows);
  // computed on first use (KeyHashOf never returns 0).
  uint64_t global_key_hash_ = 0;
  Collector* current_out_ = nullptr;

  // Keyed-state observability (null when the job exposes no registry).
  Gauge* load_gauge_ = nullptr;
  Gauge* probe_gauge_ = nullptr;
  Gauge* keys_gauge_ = nullptr;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_WINDOW_OPERATOR_H_
