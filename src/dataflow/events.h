#ifndef STREAMLINE_DATAFLOW_EVENTS_H_
#define STREAMLINE_DATAFLOW_EVENTS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/record.h"
#include "common/time.h"

namespace streamline {

/// One unit of in-flight data on a channel. Besides records, channels carry
/// the three control events of the pipelined engine: watermarks (event-time
/// progress), checkpoint barriers (asynchronous barrier snapshotting) and
/// end-of-stream markers (what makes a bounded "batch" job just a stream
/// that ends).
struct StreamEvent {
  enum class Kind : uint8_t {
    kRecord = 0,
    kWatermark = 1,
    kBarrier = 2,
    kEndOfStream = 3,
    kBatch = 4,
  };

  Kind kind = Kind::kRecord;
  Record record;                      // kRecord
  std::vector<Record> batch;          // kBatch (network-buffer batching)
  Timestamp watermark = kMinTimestamp;  // kWatermark
  uint64_t barrier_id = 0;            // kBarrier

  static StreamEvent OfRecord(Record r) {
    StreamEvent e;
    e.kind = Kind::kRecord;
    e.record = std::move(r);
    return e;
  }
  static StreamEvent OfBatch(std::vector<Record> records) {
    StreamEvent e;
    e.kind = Kind::kBatch;
    e.batch = std::move(records);
    return e;
  }
  static StreamEvent OfWatermark(Timestamp wm) {
    StreamEvent e;
    e.kind = Kind::kWatermark;
    e.watermark = wm;
    return e;
  }
  static StreamEvent OfBarrier(uint64_t id) {
    StreamEvent e;
    e.kind = Kind::kBarrier;
    e.barrier_id = id;
    return e;
  }
  static StreamEvent EndOfStream() {
    StreamEvent e;
    e.kind = Kind::kEndOfStream;
    return e;
  }
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_EVENTS_H_
