#include "dataflow/temporal_join.h"

#include "common/logging.h"

namespace streamline {

TemporalJoinOperator::TemporalJoinOperator(std::string name, Spec spec)
    : name_(std::move(name)), spec_(std::move(spec)) {
  STREAMLINE_CHECK(spec_.fact_key != nullptr);
  STREAMLINE_CHECK(spec_.table_key != nullptr);
}

Status TemporalJoinOperator::Open(const OperatorContext& ctx) {
  if (ctx.metrics != nullptr) {
    const std::string prefix = "op." + name_ + "." +
                               std::to_string(ctx.subtask_index) + ".state.";
    load_gauge_ = ctx.metrics->GetGauge(prefix + "load_factor");
    probe_gauge_ = ctx.metrics->GetGauge(prefix + "max_probe");
    keys_gauge_ = ctx.metrics->GetGauge(prefix + "keys");
  }
  return Status::Ok();
}

void TemporalJoinOperator::ProcessWatermark(Timestamp, Collector*) {
  if (load_gauge_ == nullptr) return;
  load_gauge_->Set(table_.load_factor());
  probe_gauge_->Set(static_cast<double>(table_.max_probe_length()));
  keys_gauge_->Set(static_cast<double>(table_.size()));
}

void TemporalJoinOperator::ProcessRecord(int input, Record&& record,
                                         Collector* out) {
  if (input == 1) {
    // Changelog upsert: latest row per key wins.
    const Value key = spec_.table_key(record);
    const uint64_t hash =
        record.has_key_hash() ? record.key_hash : KeyHashOf(key);
    changelog_.Upsert(key, hash);
    table_.TryEmplace(hash, key).first->second = std::move(record);
    return;
  }
  const Value key = spec_.fact_key(record);
  const uint64_t hash =
      record.has_key_hash() ? record.key_hash : KeyHashOf(key);
  Record* row = table_.Find(hash, key);
  if (row == nullptr) {
    if (!spec_.emit_unmatched) return;
    Record padded = std::move(record);
    for (size_t i = 0; i < spec_.table_width; ++i) {
      padded.fields.push_back(Value::Null());
    }
    out->Emit(std::move(padded));
    return;
  }
  Record joined = std::move(record);
  joined.fields.insert(joined.fields.end(), row->fields.begin(),
                       row->fields.end());
  out->Emit(std::move(joined));
}

Status TemporalJoinOperator::SnapshotState(BinaryWriter* w) const {
  w->WriteU64(table_.size());
  for (const auto& [key, row] : table_) {
    w->WriteValue(key);
    w->WriteRecord(row);
  }
  return Status::Ok();
}

Status TemporalJoinOperator::RestoreState(BinaryReader* r) {
  auto n = r->ReadU64();
  if (!n.ok()) return n.status();
  table_.clear();
  table_.Reserve(*n);
  for (uint64_t i = 0; i < *n; ++i) {
    auto key = r->ReadValue();
    if (!key.ok()) return key.status();
    auto row = r->ReadRecord();
    if (!row.ok()) return row.status();
    table_.TryEmplace(KeyHashOf(*key), *key, std::move(*row));
  }
  return Status::Ok();
}

Status TemporalJoinOperator::SnapshotDelta(ChangelogSink* sink) {
  // The dimension table only ever upserts, so every event carries a row.
  for (const KeyedChangelog::Event& ev : changelog_.events()) {
    BinaryWriter w;
    w.WriteU8(kDeltaUpsertTag);
    w.WriteValue(ev.key);
    const Record* row = table_.Find(ev.hash, ev.key);
    w.WriteU8(row != nullptr ? 1 : 0);
    if (row != nullptr) w.WriteRecord(*row);
    STREAMLINE_RETURN_IF_ERROR(sink->Append(w.Release()));
  }
  changelog_.Clear();
  return Status::Ok();
}

Status TemporalJoinOperator::ApplyDelta(BinaryReader* r) {
  auto tag = r->ReadU8();
  if (!tag.ok()) return tag.status();
  if (*tag != kDeltaUpsertTag) {
    return Status::Internal("bad changelog tag " + std::to_string(*tag) +
                            " in '" + name_ + "'");
  }
  auto key = r->ReadValue();
  if (!key.ok()) return key.status();
  auto present = r->ReadU8();
  if (!present.ok()) return present.status();
  auto [entry, inserted] = table_.TryEmplace(KeyHashOf(*key), *key);
  (void)inserted;
  if (*present != 0) {
    auto row = r->ReadRecord();
    if (!row.ok()) return row.status();
    entry->second = std::move(*row);
  }
  return Status::Ok();
}

}  // namespace streamline
