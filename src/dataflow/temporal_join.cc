#include "dataflow/temporal_join.h"

#include "common/logging.h"

namespace streamline {

TemporalJoinOperator::TemporalJoinOperator(std::string name, Spec spec)
    : name_(std::move(name)), spec_(std::move(spec)) {
  STREAMLINE_CHECK(spec_.fact_key != nullptr);
  STREAMLINE_CHECK(spec_.table_key != nullptr);
}

void TemporalJoinOperator::ProcessRecord(int input, Record&& record,
                                         Collector* out) {
  if (input == 1) {
    // Changelog upsert: latest row per key wins.
    const Value key = spec_.table_key(record);
    table_[key] = std::move(record);
    return;
  }
  const Value key = spec_.fact_key(record);
  auto it = table_.find(key);
  if (it == table_.end()) {
    if (!spec_.emit_unmatched) return;
    Record padded = std::move(record);
    for (size_t i = 0; i < spec_.table_width; ++i) {
      padded.fields.push_back(Value::Null());
    }
    out->Emit(std::move(padded));
    return;
  }
  Record joined = std::move(record);
  joined.fields.insert(joined.fields.end(), it->second.fields.begin(),
                       it->second.fields.end());
  out->Emit(std::move(joined));
}

Status TemporalJoinOperator::SnapshotState(BinaryWriter* w) const {
  w->WriteU64(table_.size());
  for (const auto& [key, row] : table_) {
    w->WriteValue(key);
    w->WriteRecord(row);
  }
  return Status::Ok();
}

Status TemporalJoinOperator::RestoreState(BinaryReader* r) {
  auto n = r->ReadU64();
  if (!n.ok()) return n.status();
  table_.clear();
  for (uint64_t i = 0; i < *n; ++i) {
    auto key = r->ReadValue();
    if (!key.ok()) return key.status();
    auto row = r->ReadRecord();
    if (!row.ok()) return row.status();
    table_.emplace(std::move(*key), std::move(*row));
  }
  return Status::Ok();
}

}  // namespace streamline
