#ifndef STREAMLINE_DATAFLOW_SINK_H_
#define STREAMLINE_DATAFLOW_SINK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/record.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "common/time.h"

namespace streamline {

/// Terminal consumer of a pipeline. Unlike operators, sink functions may be
/// shared across a job and inspected after it finishes (e.g. CollectSink),
/// so implementations must be thread-safe when parallelism > 1.
class SinkFunction {
 public:
  virtual ~SinkFunction() = default;

  /// Consumes one record. A non-ok Status fails the task (and with it the
  /// job), exactly like an exception thrown from user code.
  virtual Status Invoke(const Record& record) = 0;
  virtual void OnWatermark(Timestamp wm) { (void)wm; }
  /// A checkpoint barrier passed through the sink: everything Invoke()d
  /// before this call is covered by checkpoint `id`.
  virtual void OnBarrier(uint64_t id) { (void)id; }
  /// A new job instance attached to this (possibly shared) sink -- after a
  /// crash the supervisor restores from the last complete checkpoint and
  /// the sink must abort any transaction the dead job left open, since the
  /// restored job will re-produce that uncommitted suffix.
  virtual void OnRestart() {}
  virtual Status Close() { return Status::Ok(); }
  virtual std::string Name() const = 0;
};

/// Collects all records in arrival order; thread-safe. The workhorse test
/// and example sink. Also remembers at which output offset each checkpoint
/// barrier passed, which exactly-once tests use to truncate output.
class CollectSink : public SinkFunction {
 public:
  Status Invoke(const Record& record) override {
    MutexLock lock(&mu_);
    records_.push_back(record);
    return Status::Ok();
  }

  void OnBarrier(uint64_t id) override {
    MutexLock lock(&mu_);
    barrier_offsets_.emplace_back(id, records_.size());
  }

  std::string Name() const override { return "collect"; }

  std::vector<Record> records() const {
    MutexLock lock(&mu_);
    return records_;
  }

  size_t size() const {
    MutexLock lock(&mu_);
    return records_.size();
  }

  /// Output offset at the moment checkpoint `id` passed the sink, or -1.
  /// Only meaningful when the sink node runs at parallelism 1 (e.g. behind
  /// a Rebalance(1)): with several sink subtasks sharing one CollectSink,
  /// their outputs interleave and no single offset separates pre- from
  /// post-barrier records.
  int64_t BarrierOffset(uint64_t id) const {
    MutexLock lock(&mu_);
    for (const auto& [bid, off] : barrier_offsets_) {
      if (bid == id) return static_cast<int64_t>(off);
    }
    return -1;
  }

  void Clear() {
    MutexLock lock(&mu_);
    records_.clear();
    barrier_offsets_.clear();
  }

 private:
  mutable Mutex mu_;
  std::vector<Record> records_ STREAMLINE_GUARDED_BY(mu_);
  std::vector<std::pair<uint64_t, size_t>> barrier_offsets_
      STREAMLINE_GUARDED_BY(mu_);
};

/// Calls a user function per record; thread-safe iff the function is.
class CallbackSink : public SinkFunction {
 public:
  explicit CallbackSink(std::function<void(const Record&)> fn)
      : fn_(std::move(fn)) {}
  Status Invoke(const Record& record) override {
    fn_(record);
    return Status::Ok();
  }
  std::string Name() const override { return "callback"; }

 private:
  std::function<void(const Record&)> fn_;
};

/// Discards records but counts them; for benchmarks.
class NullSink : public SinkFunction {
 public:
  Status Invoke(const Record&) override {
    count_.fetch_add(1, std::memory_order_relaxed);
    return Status::Ok();
  }
  std::string Name() const override { return "null"; }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
};

/// Exactly-once OUTPUT: a transactional sink that buffers records in an
/// open "transaction" and atomically commits the buffer when a checkpoint
/// barrier passes. On a crash, uncommitted records vanish with the
/// transaction (exactly the suffix a restored job re-produces), so
/// `committed()` across crash + restore equals the uninterrupted run.
///
/// Run the sink node at parallelism 1 (one transaction sequence).
/// Simplification vs. a full two-phase protocol: the commit happens when
/// the barrier reaches the sink rather than on a global
/// checkpoint-complete notification; with aligned barriers the committed
/// prefix is checkpoint-consistent either way.
class TransactionalCollectSink : public SinkFunction {
 public:
  Status Invoke(const Record& record) override {
    MutexLock lock(&mu_);
    pending_.push_back(record);
    return Status::Ok();
  }

  /// Abort the transaction a crashed job left open: the restored job
  /// replays from the last complete checkpoint, so keeping these pending
  /// records would duplicate them.
  void OnRestart() override {
    MutexLock lock(&mu_);
    aborted_ += pending_.size();
    pending_.clear();
  }

  void OnBarrier(uint64_t id) override {
    MutexLock lock(&mu_);
    committed_.insert(committed_.end(),
                      std::make_move_iterator(pending_.begin()),
                      std::make_move_iterator(pending_.end()));
    pending_.clear();
    last_committed_checkpoint_ = id;
  }

  std::string Name() const override { return "transactional-collect"; }

  /// Records covered by a committed transaction; survives a crash.
  std::vector<Record> committed() const {
    MutexLock lock(&mu_);
    return committed_;
  }
  size_t pending_size() const {
    MutexLock lock(&mu_);
    return pending_.size();
  }
  uint64_t last_committed_checkpoint() const {
    MutexLock lock(&mu_);
    return last_committed_checkpoint_;
  }
  /// Total records dropped by OnRestart() transaction aborts.
  size_t aborted() const {
    MutexLock lock(&mu_);
    return aborted_;
  }

 private:
  mutable Mutex mu_;
  // Open transaction (lost on crash).
  std::vector<Record> pending_ STREAMLINE_GUARDED_BY(mu_);
  // Durable.
  std::vector<Record> committed_ STREAMLINE_GUARDED_BY(mu_);
  size_t aborted_ STREAMLINE_GUARDED_BY(mu_) = 0;
  uint64_t last_committed_checkpoint_ STREAMLINE_GUARDED_BY(mu_) = 0;
};

/// Prints each record to stdout (serialized by an internal mutex).
class PrintSink : public SinkFunction {
 public:
  explicit PrintSink(std::string prefix = "") : prefix_(std::move(prefix)) {}
  Status Invoke(const Record& record) override;
  std::string Name() const override { return "print"; }

 private:
  Mutex mu_;
  std::string prefix_;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_SINK_H_
