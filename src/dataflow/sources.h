#ifndef STREAMLINE_DATAFLOW_SOURCES_H_
#define STREAMLINE_DATAFLOW_SOURCES_H_

#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/random.h"
#include "dataflow/source.h"

namespace streamline {

/// Bounded source over an in-memory record vector ("data at rest"). Emits
/// records in element order with a watermark every `watermark_every`
/// records (records must be timestamp-ordered for those watermarks to be
/// truthful). The read position is checkpointed, so a restored job resumes
/// exactly after the last pre-barrier record.
class VectorSource : public SourceFunction {
 public:
  explicit VectorSource(std::vector<Record> records,
                        uint64_t watermark_every = 64)
      : records_(std::move(records)), watermark_every_(watermark_every) {}

  Result<SourcePoll> Poll(SourceContext* ctx) override;
  Status SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  std::string Name() const override { return "vector-source"; }

  /// Splits `records` round-robin across `parallelism` subtasks.
  static SourceFactory Factory(std::vector<Record> records,
                               uint64_t watermark_every = 64);

 private:
  std::vector<Record> records_;
  uint64_t watermark_every_;
  uint64_t pos_ = 0;
};

/// Source driven by a deterministic generator function of the sequence
/// number; returns nullopt to end the stream (or never, for "data in
/// motion" jobs that run until cancelled). The sequence number is
/// checkpointed -- with a deterministic generator that makes the source
/// exactly replayable.
class GeneratorSource : public SourceFunction {
 public:
  using GenFn = std::function<std::optional<Record>(uint64_t seq)>;

  GeneratorSource(std::string name, GenFn fn, uint64_t watermark_every = 64)
      : name_(std::move(name)), fn_(std::move(fn)),
        watermark_every_(watermark_every) {}

  Result<SourcePoll> Poll(SourceContext* ctx) override;
  Status SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  std::string Name() const override { return name_; }

  /// Factory where every subtask runs `make(subtask, parallelism)`.
  static SourceFactory Factory(
      std::string name,
      std::function<GenFn(int subtask, int parallelism)> make,
      uint64_t watermark_every = 64);

 private:
  std::string name_;
  GenFn fn_;
  uint64_t watermark_every_;
  uint64_t seq_ = 0;
  // Reused batch staging buffer (EmitBatch drains it in place, capacity
  // preserved), so the batch path allocates once per source, not per poll.
  std::vector<Record> scratch_;
};

/// Test/workload tool: wraps an in-order generator and emits its records
/// OUT of order (uniform shuffle within a buffer of `disorder_window`
/// records) with correct conservative watermarks (the minimum timestamp
/// still buffered). Models real ingestion skew and exercises downstream
/// reorder/lateness handling. Not checkpointable (shuffle state).
class DisorderedSource : public SourceFunction {
 public:
  using GenFn = std::function<std::optional<Record>(uint64_t seq)>;

  DisorderedSource(GenFn fn, size_t disorder_window,
                   uint64_t watermark_every = 64, uint64_t seed = 17);

  Result<SourcePoll> Poll(SourceContext* ctx) override;
  Status SnapshotState(BinaryWriter* w) const override;
  std::string Name() const override { return "disordered-source"; }

 private:
  GenFn fn_;
  size_t disorder_window_;
  uint64_t watermark_every_;
  Rng rng_;
  std::vector<Record> buffer_;
  uint64_t seq_ = 0;
  uint64_t emitted_ = 0;
  bool exhausted_ = false;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_SOURCES_H_
