#ifndef STREAMLINE_DATAFLOW_SNAPSHOT_H_
#define STREAMLINE_DATAFLOW_SNAPSHOT_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace streamline {

/// In-memory snapshot storage, the stand-in for a durable checkpoint
/// backend. Keyed by (checkpoint id, state key); state keys are
/// "node<id>/<subtask>" strings assigned by the executor. Thread-safe and
/// shareable across Job instances -- a restored job reads the snapshots a
/// crashed job wrote.
class SnapshotStore {
 public:
  void Put(uint64_t checkpoint_id, const std::string& key, std::string bytes);
  Result<std::string> Get(uint64_t checkpoint_id,
                          const std::string& key) const;
  bool Has(uint64_t checkpoint_id, const std::string& key) const;
  size_t NumEntries(uint64_t checkpoint_id) const;
  std::vector<uint64_t> CheckpointIds() const;
  /// Total bytes held by checkpoint `id` (0 if unknown).
  size_t TotalBytes(uint64_t checkpoint_id) const;

 private:
  mutable std::mutex mu_;
  std::map<uint64_t, std::unordered_map<std::string, std::string>> data_;
};

/// Drives asynchronous barrier snapshotting (the checkpoint protocol of the
/// paper's execution engine [Carbone et al. 2015]): Trigger() injects a
/// numbered barrier at every source; tasks align barriers across their
/// inputs, snapshot their state, and ack. A checkpoint is complete when
/// every task acked.
class CheckpointCoordinator {
 public:
  CheckpointCoordinator(SnapshotStore* store, int expected_acks)
      : store_(store), expected_acks_(expected_acks) {}

  /// Registers the per-source-task barrier injection hook.
  void RegisterSourceTrigger(std::function<void(uint64_t)> fn);

  /// Starts a new checkpoint; returns its id.
  uint64_t Trigger();

  /// Called by each task after its snapshot is stored.
  void AckTask(uint64_t checkpoint_id);

  /// Blocks until checkpoint `id` has all acks or the timeout elapses.
  bool AwaitCompletion(uint64_t id, double timeout_seconds);

  bool IsComplete(uint64_t id) const;
  uint64_t latest_completed() const;
  uint64_t last_triggered() const;
  SnapshotStore* store() const { return store_; }

 private:
  SnapshotStore* store_;
  const int expected_acks_;
  mutable std::mutex mu_;
  std::condition_variable complete_cv_;
  std::vector<std::function<void(uint64_t)>> source_triggers_;
  std::map<uint64_t, int> acks_;
  uint64_t next_id_ = 1;
  uint64_t latest_completed_ = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_SNAPSHOT_H_
