#ifndef STREAMLINE_DATAFLOW_SNAPSHOT_H_
#define STREAMLINE_DATAFLOW_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/wal.h"

namespace streamline {

class FaultInjector;

/// Snapshot storage, keyed by (checkpoint id, state key); state keys are
/// "node<id>/<subtask>" strings assigned by the executor. The base class is
/// the in-memory backend; FileSnapshotStore below is the durable one.
/// Thread-safe and shareable across Job instances -- a restored job reads
/// the snapshots a crashed job wrote, and the JobSupervisor keeps one store
/// alive across restarts.
///
/// A checkpoint becomes *complete* when the CheckpointCoordinator saw every
/// task ack it (MarkComplete); only complete checkpoints are valid restore
/// points. Completion also drives retention: once a newer checkpoint
/// completes, checkpoints older than the last `RetainLast(n)` completed
/// ones (default 2, so recovery always has a fallback) are pruned.
class SnapshotStore {
 public:
  virtual ~SnapshotStore() = default;

  /// Stores one state entry. A failed write (ENOSPC, short write) comes
  /// back as an error Status naming the failing path; the executor turns
  /// it into a task failure so the checkpoint never completes.
  virtual Status Put(uint64_t checkpoint_id, const std::string& key,
                     std::string bytes);
  virtual Result<std::string> Get(uint64_t checkpoint_id,
                                  const std::string& key) const;
  virtual bool Has(uint64_t checkpoint_id, const std::string& key) const;
  virtual size_t NumEntries(uint64_t checkpoint_id) const;
  virtual std::vector<uint64_t> CheckpointIds() const;
  /// Total bytes held by checkpoint `id` (0 if unknown).
  virtual size_t TotalBytes(uint64_t checkpoint_id) const;

  /// Marks checkpoint `id` complete (all tasks acked) and prunes
  /// checkpoints older than the last RetainLast(n) completed ones.
  virtual void MarkComplete(uint64_t checkpoint_id);
  /// Latest complete checkpoint, 0 if none -- the supervisor's restore
  /// point.
  virtual uint64_t LatestComplete() const;
  /// All complete checkpoints, ascending.
  virtual std::vector<uint64_t> CompletedCheckpoints() const;
  /// Highest checkpoint id this store has ever seen (Put or MarkComplete),
  /// monotone across pruning. A new job's coordinator numbers its
  /// checkpoints after this, so ids never collide across restarts.
  virtual uint64_t MaxCheckpointId() const;
  /// Removes checkpoint `id` entirely (pruning, or a corrupt restore
  /// candidate the supervisor gives up on).
  virtual void Drop(uint64_t checkpoint_id);

  /// Retention: keep the last `n` (>= 1) completed checkpoints.
  void RetainLast(size_t n);
  size_t retain_last() const;

 protected:
  /// Checkpoints to delete so only the newest `retain` of `completed` (and
  /// anything newer than the oldest survivor) remain. `all` and `completed`
  /// ascending.
  static std::vector<uint64_t> PruneList(const std::vector<uint64_t>& all,
                                         const std::vector<uint64_t>& completed,
                                         size_t retain);

  // Shared with FileSnapshotStore, which guards its own max_id_ with it.
  mutable Mutex mu_;

 private:
  std::map<uint64_t, std::unordered_map<std::string, std::string>> data_
      STREAMLINE_GUARDED_BY(mu_);
  std::set<uint64_t> completed_ STREAMLINE_GUARDED_BY(mu_);
  uint64_t max_id_ STREAMLINE_GUARDED_BY(mu_) = 0;
  size_t retain_last_ STREAMLINE_GUARDED_BY(mu_) = 2;
};

/// Durable snapshot backend: one directory per checkpoint
/// (`<root>/chk<id>/`), one file per state entry, written to a temp name
/// and atomically renamed into place so readers never observe a partial
/// entry. Each entry carries a magic header, payload CRC32 and length;
/// Get() verifies all three and reports corruption as an error Status,
/// which makes the supervisor fall back to the previous complete
/// checkpoint. Completion is a `COMPLETE` marker file (also written via
/// rename), so "which checkpoints are valid restore points" survives a
/// process restart.
class FileSnapshotStore : public SnapshotStore {
 public:
  /// Creates `root_dir` if missing and indexes any checkpoints already on
  /// disk (recovery across process restarts).
  explicit FileSnapshotStore(std::string root_dir);

  Status Put(uint64_t checkpoint_id, const std::string& key,
             std::string bytes) override;
  Result<std::string> Get(uint64_t checkpoint_id,
                          const std::string& key) const override;
  bool Has(uint64_t checkpoint_id, const std::string& key) const override;
  size_t NumEntries(uint64_t checkpoint_id) const override;
  std::vector<uint64_t> CheckpointIds() const override;
  size_t TotalBytes(uint64_t checkpoint_id) const override;

  void MarkComplete(uint64_t checkpoint_id) override;
  uint64_t LatestComplete() const override;
  std::vector<uint64_t> CompletedCheckpoints() const override;
  uint64_t MaxCheckpointId() const override;
  void Drop(uint64_t checkpoint_id) override;

  const std::string& root_dir() const { return root_; }

 protected:
  std::string CheckpointDir(uint64_t id) const;
  std::string EntryPath(uint64_t id, const std::string& key) const;
  std::vector<uint64_t> ScanIdsLocked() const STREAMLINE_REQUIRES(mu_);
  std::vector<uint64_t> ScanCompletedLocked() const STREAMLINE_REQUIRES(mu_);
  void NoteCheckpointId(uint64_t id);

 private:
  std::string root_;
  uint64_t max_id_ STREAMLINE_GUARDED_BY(mu_) = 0;
};

/// Log-structured durable backend: checkpoints are *incremental*. Keyed
/// operators append upsert/erase changelog records to a per-key-group WAL
/// segment at each barrier; the store seals the segment and publishes a
/// per-group *manifest* (`chk<id>/<group>.manifest`) tying the checkpoint
/// to {base, delta segments...}. A periodic compacted base (written when
/// the chain's delta bytes cross the compaction threshold) bounds recovery
/// replay. Layout under the root:
///
///   chk<id>/<entry>            full entries + COMPLETE (inherited)
///   chk<id>/<group>.manifest   base + delta-segment list for one group
///   wal/<group>/base<id>       compacted full snapshot (entry-framed)
///   wal/<group>/seg<id>        sealed changelog segment of checkpoint <id>
///
/// Pruning is manifest-aware: dropping a checkpoint removes its directory
/// (manifests included), then deletes only those wal files no *live*
/// manifest references and whose id precedes every surviving checkpoint --
/// so a base or segment a live manifest needs is never dropped, no matter
/// how old.
class IncrementalSnapshotStore : public FileSnapshotStore {
 public:
  explicit IncrementalSnapshotStore(std::string root_dir);

  /// Chaos hook: "wal:compact" fires before a base write, "wal:seal"
  /// before sealing a segment, "manifest:publish" before a manifest write
  /// (WalWriter adds "wal:append"/"wal:append_torn"/"wal:sync" per
  /// operation). Call before the job runs.
  void SetFaultInjector(FaultInjector* injector);

  /// Delta bytes a group's chain may accumulate before the next barrier
  /// writes a compacted base instead of another delta.
  void SetCompactionThreshold(size_t bytes);
  size_t compaction_threshold() const;

  /// True when `key` must write a full base at this barrier: no live chain
  /// at `parent_checkpoint` (0, or its manifest is gone), or the chain's
  /// accumulated delta bytes crossed the compaction threshold.
  bool NeedsBase(const std::string& key, uint64_t parent_checkpoint) const;

  /// Publishes a compacted base for `key` plus a manifest referencing only
  /// it. The entry bytes are framed and CRC-verified like full entries.
  Status PutBase(uint64_t checkpoint_id, const std::string& key,
                 std::string bytes);

  /// Opens the changelog segment for `key` at this barrier (truncating any
  /// stale leftover of a crashed incarnation that reused the id).
  Result<std::unique_ptr<WalWriter>> OpenDeltaSegment(uint64_t checkpoint_id,
                                                      const std::string& key);

  /// Seals `segment` (fsync + close) and publishes the chk<checkpoint_id>
  /// manifest: the parent chain's manifest plus the new segment. An empty
  /// segment is deleted and the parent manifest republished verbatim, so
  /// an untouched group costs one small manifest and zero state bytes.
  Status SealDeltas(uint64_t checkpoint_id, const std::string& key,
                    uint64_t parent_checkpoint,
                    std::unique_ptr<WalWriter> segment);

  struct IncrementalSnapshot {
    /// Base full-snapshot bytes (operator SnapshotState payload).
    std::string base;
    /// Sealed changelog records per segment, chain order; replay each
    /// record with ApplyDelta after restoring the base.
    std::vector<std::vector<std::string>> deltas;
  };

  /// True when checkpoint `id` has a manifest for `key`.
  bool HasIncremental(uint64_t checkpoint_id, const std::string& key) const;
  Result<IncrementalSnapshot> GetIncremental(uint64_t checkpoint_id,
                                             const std::string& key) const;

  /// Bytes this store wrote on behalf of checkpoint `id` (entries, bases,
  /// segments, manifests); in-memory accounting for benchmarks and tests.
  size_t BytesWrittenFor(uint64_t checkpoint_id) const;

  Status Put(uint64_t checkpoint_id, const std::string& key,
             std::string bytes) override;
  /// Drops the checkpoint directory, then garbage-collects wal files that
  /// no surviving manifest references.
  void Drop(uint64_t checkpoint_id) override;

 private:
  struct Manifest {
    uint64_t base = 0;  // checkpoint id of wal/<group>/base<id>
    std::vector<std::pair<uint64_t, uint64_t>> deltas;  // (id, bytes)
  };

  std::string GroupDir(const std::string& key) const;
  std::string BasePath(const std::string& key, uint64_t id) const;
  std::string SegmentPath(const std::string& key, uint64_t id) const;
  std::string ManifestPath(uint64_t id, const std::string& key) const;
  Result<Manifest> ReadManifest(uint64_t id, const std::string& key) const;
  Status PublishManifest(uint64_t id, const std::string& key,
                         const Manifest& m);
  void CountBytes(uint64_t checkpoint_id, size_t bytes);

  mutable Mutex inc_mu_;
  FaultInjector* injector_ STREAMLINE_GUARDED_BY(inc_mu_) = nullptr;
  size_t compaction_threshold_ STREAMLINE_GUARDED_BY(inc_mu_) = 4u << 20;
  std::map<uint64_t, size_t> bytes_written_ STREAMLINE_GUARDED_BY(inc_mu_);
};

/// Drives asynchronous barrier snapshotting (the checkpoint protocol of the
/// paper's execution engine [Carbone et al. 2015]): Trigger() injects a
/// numbered barrier at every source; tasks align barriers across their
/// inputs, snapshot their state, and ack. A checkpoint is complete when
/// every task acked; completion is recorded in the SnapshotStore so
/// recovery (and, with a durable store, later processes) can find it.
class CheckpointCoordinator {
 public:
  /// `first_id` numbers the first checkpoint; a restarted job passes
  /// store->MaxCheckpointId() + 1 so ids stay unique within the store.
  CheckpointCoordinator(SnapshotStore* store, int expected_acks,
                        uint64_t first_id = 1)
      : store_(store), expected_acks_(expected_acks), next_id_(first_id) {}

  /// Registers the per-source-task barrier injection hook.
  void RegisterSourceTrigger(std::function<void(uint64_t)> fn);

  /// Starts a new checkpoint; returns its id.
  uint64_t Trigger();

  /// Called by each task after its snapshot is stored.
  void AckTask(uint64_t checkpoint_id);

  /// Blocks until checkpoint `id` has all acks or the timeout elapses.
  bool AwaitCompletion(uint64_t id, double timeout_seconds);

  bool IsComplete(uint64_t id) const;
  uint64_t latest_completed() const;
  uint64_t last_triggered() const;
  SnapshotStore* store() const { return store_; }

 private:
  SnapshotStore* store_;
  const int expected_acks_;
  mutable Mutex mu_;
  CondVar complete_cv_;
  std::vector<std::function<void(uint64_t)>> source_triggers_
      STREAMLINE_GUARDED_BY(mu_);
  std::map<uint64_t, int> acks_ STREAMLINE_GUARDED_BY(mu_);
  uint64_t next_id_ STREAMLINE_GUARDED_BY(mu_) = 1;
  uint64_t latest_completed_ STREAMLINE_GUARDED_BY(mu_) = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_SNAPSHOT_H_
