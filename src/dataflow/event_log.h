#ifndef STREAMLINE_DATAFLOW_EVENT_LOG_H_
#define STREAMLINE_DATAFLOW_EVENT_LOG_H_

#include <memory>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "dataflow/source.h"

namespace streamline {

/// In-memory partitioned, append-only, replayable record log -- the
/// stand-in for the durable message broker (Kafka et al.) a production
/// STREAMLINE deployment would ingest from. Producers append to
/// partitions; any number of readers consume by (partition, offset), so
/// sources are replayable and their offsets are the natural checkpoint
/// state. Thread-safe; appends while a job reads model live ingestion.
class EventLog {
 public:
  explicit EventLog(int num_partitions);

  int num_partitions() const { return static_cast<int>(partitions_.size()); }

  /// Appends to an explicit partition; returns the record's offset.
  uint64_t Append(int partition, Record record);
  /// Appends partitioned by key hash (field `key_field`).
  uint64_t AppendByKey(size_t key_field, Record record);

  /// Number of records currently in `partition`.
  uint64_t EndOffset(int partition) const;

  /// Reads the record at (partition, offset); NotFound past the end.
  Result<Record> Read(int partition, uint64_t offset) const;

  /// Marks the log finished: sources drain to the end offsets and stop
  /// (bounded semantics). Without this, sources idle-wait for appends.
  void Close();
  bool closed() const;

 private:
  struct Partition {
    std::vector<Record> records;
  };

  mutable Mutex mu_;
  std::vector<Partition> partitions_ STREAMLINE_GUARDED_BY(mu_);
  bool closed_ STREAMLINE_GUARDED_BY(mu_) = false;
};

/// Source reading one or more partitions of an EventLog. Each source
/// subtask owns the partitions `p` with `p % parallelism == subtask`; its
/// per-partition offsets are checkpointed, giving parallel exactly-once
/// ingestion. Reading an open log blocks politely (spin+yield) until data
/// arrives or the log closes; a closed log makes the job bounded.
class LogSource : public SourceFunction {
 public:
  LogSource(std::shared_ptr<EventLog> log, int subtask, int parallelism,
            uint64_t watermark_every = 64);

  Result<SourcePoll> Poll(SourceContext* ctx) override;
  Status SnapshotState(BinaryWriter* w) const override;
  Status RestoreState(BinaryReader* r) override;
  std::string Name() const override;

  static SourceFactory Factory(std::shared_ptr<EventLog> log,
                               uint64_t watermark_every = 64);

 private:
  std::shared_ptr<EventLog> log_;
  int subtask_;
  int parallelism_;
  uint64_t watermark_every_;
  std::vector<int> my_partitions_;
  std::vector<uint64_t> offsets_;  // parallel to my_partitions_
  // Poll-local merge state (not checkpointed: watermark cadence restarts
  // after a restore, which only delays the next watermark).
  std::vector<Timestamp> last_ts_;  // parallel to my_partitions_
  uint64_t emitted_ = 0;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_EVENT_LOG_H_
