#ifndef STREAMLINE_DATAFLOW_SUPERVISOR_H_
#define STREAMLINE_DATAFLOW_SUPERVISOR_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/random.h"
#include "common/thread_annotations.h"
#include "common/status.h"
#include "dataflow/executor.h"
#include "dataflow/graph.h"

namespace streamline {

/// When and how often a supervised job may be restarted after a failure.
struct RestartPolicy {
  /// Restart attempts after the initial run; exceeding this surfaces the
  /// last failure.
  int max_restarts = 3;
  /// Exponential backoff between restarts: initial * multiplier^(n-1),
  /// capped at max, with +/- `jitter` relative randomization (seeded, so
  /// runs are reproducible).
  int64_t initial_backoff_ms = 10;
  double backoff_multiplier = 2.0;
  int64_t max_backoff_ms = 1000;
  double jitter = 0.1;
  uint64_t jitter_seed = 42;
  /// Failure-rate circuit breaker: give up when more than
  /// `circuit_breaker_failures` failures land within
  /// `circuit_breaker_window_ms` (wall clock), even if max_restarts is not
  /// exhausted. 0 disables the breaker.
  int circuit_breaker_failures = 0;
  int64_t circuit_breaker_window_ms = 60000;
};

/// What happened during one supervised execution.
struct SupervisionStats {
  /// Restarts actually performed (0 = the first run succeeded).
  int restarts = 0;
  /// Checkpoint id of each restore, in order (0 = fresh restart, nothing
  /// completed yet).
  std::vector<uint64_t> restored_from;
  /// Failure message of every failed run, in order.
  std::vector<std::string> failures;
  /// True when the circuit breaker ended supervision.
  bool circuit_broken = false;
};

/// Runs a job to completion under a restart policy -- the failure-recovery
/// half of the checkpointing story. The supervisor owns the shared
/// SnapshotStore: a crashed run's completed checkpoints survive it, and
/// every restart re-creates the job from the logical graph with
/// `restore_from_checkpoint` pointing at the newest complete checkpoint
/// (falling back to the next-older one when a restore fails, e.g. on
/// corrupted snapshot files). Checkpoint ids keep increasing across
/// incarnations, so a recovered job's new checkpoints never collide with
/// its predecessor's.
class JobSupervisor {
 public:
  /// `graph` must outlive the supervisor. `options.snapshot_store` is
  /// created (in-memory) when null -- pass a FileSnapshotStore for
  /// durability.
  JobSupervisor(const LogicalGraph* graph, JobOptions options,
                RestartPolicy policy = RestartPolicy());

  /// Runs until the job completes cleanly, the restart budget or circuit
  /// breaker is exhausted (returns the last failure), or Cancel().
  /// Blocking; call from one thread at a time.
  Status Run();

  /// Cancels the currently running incarnation and stops restarting.
  void Cancel();

  const SupervisionStats& stats() const { return stats_; }
  SnapshotStore* snapshot_store() const { return store_.get(); }

 private:
  /// Newest complete checkpoint not in `bad`, or 0 (fresh start).
  uint64_t PickRestoreCheckpoint(const std::vector<uint64_t>& bad) const;
  int64_t BackoffMs(int restart_number);
  /// Sleeps ~ms but returns early once Cancel() was called.
  void InterruptibleSleep(int64_t ms);

  const LogicalGraph* graph_;
  JobOptions options_;
  RestartPolicy policy_;
  std::shared_ptr<SnapshotStore> store_;
  SupervisionStats stats_;
  Rng jitter_rng_;  // Run() thread only

  Mutex mu_;
  Job* current_ STREAMLINE_GUARDED_BY(mu_) = nullptr;
  bool cancelled_ STREAMLINE_GUARDED_BY(mu_) = false;
};

}  // namespace streamline

#endif  // STREAMLINE_DATAFLOW_SUPERVISOR_H_
