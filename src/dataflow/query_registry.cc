#include "dataflow/query_registry.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/logging.h"

namespace streamline {

namespace {

/// log2 of the estimated resident slice count, floored at 1 -- the per-cut
/// append and per-fire range-combine cost of the FlatFAT store.
double Log2Slices(double est_store_slices) {
  return std::max(1.0, std::log2(std::max(2.0, est_store_slices)));
}

}  // namespace

uint64_t QueryRegistry::AttachSliding(Duration range, Duration slide,
                                      Timestamp origin,
                                      ResultHandler handler) {
  STREAMLINE_CHECK(range > 0 && slide > 0)
      << "standing query needs positive range and slide";
  MutexLock lock(&mu_);
  const uint64_t id = next_id_++;
  const QueryDescriptor desc{range, slide, origin};
  const QueryPlacement placement = ChoosePlacementLocked(desc);
  const bool rewrite = placement == QueryPlacement::kShared &&
                       FactorsThroughActiveLocked(desc);
  const uint64_t seq = latest_seq_.load(std::memory_order_relaxed) + 1;
  log_.push_back(QueryCommand{seq, QueryCommand::Kind::kAttach, id, desc,
                              placement});
  Entry entry;
  entry.desc = desc;
  entry.placement = placement;
  entry.attach_seq = seq;
  entry.handler = std::move(handler);
  entries_.emplace(id, std::move(entry));
  ++stats_.attaches;
  ++stats_.active_queries;
  if (rewrite) {
    // The new window factors through an existing query's cut grid: it adds
    // zero new slice boundaries, only result routes (Factor-Windows-style
    // sub-window reuse on top of Cutty sharing).
    ++stats_.rewrites_shared;
    if (rewrites_counter_ != nullptr) rewrites_counter_->Increment();
  }
  if (attaches_counter_ != nullptr) attaches_counter_->Increment();
  UpdateGaugesLocked();
  latest_seq_.store(seq, std::memory_order_release);
  return id;
}

Status QueryRegistry::Detach(uint64_t query_id) {
  MutexLock lock(&mu_);
  auto it = entries_.find(query_id);
  if (it == entries_.end()) {
    return Status::NotFound("unknown query id " + std::to_string(query_id));
  }
  if (it->second.detach_seq != 0) {
    return Status::FailedPrecondition("query " + std::to_string(query_id) +
                                      " already detached");
  }
  const uint64_t seq = latest_seq_.load(std::memory_order_relaxed) + 1;
  log_.push_back(QueryCommand{seq, QueryCommand::Kind::kDetach, query_id,
                              it->second.desc, it->second.placement});
  it->second.detach_seq = seq;
  ++stats_.detaches;
  --stats_.active_queries;
  if (detaches_counter_ != nullptr) detaches_counter_->Increment();
  UpdateGaugesLocked();
  latest_seq_.store(seq, std::memory_order_release);
  return Status::Ok();
}

bool QueryRegistry::WaitQueryApplied(uint64_t query_id,
                                     std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(&mu_);
  auto it = entries_.find(query_id);
  if (it == entries_.end()) return false;
  // Wait on the latest command concerning the query (detach supersedes).
  const uint64_t seq = std::max(it->second.attach_seq, it->second.detach_seq);
  for (;;) {
    bool applied = !worker_acks_.empty();
    for (const auto& [subtask, acked] : worker_acks_) {
      applied = applied && acked >= seq;
    }
    if (applied) return true;
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    (void)ack_cv_.WaitFor(&mu_, deadline - now);  // loop re-checks predicate
  }
}

QueryPlacement QueryRegistry::PlacementOf(uint64_t query_id) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(query_id);
  STREAMLINE_CHECK(it != entries_.end())
      << "unknown query id " << query_id;
  return it->second.placement;
}

QueryRegistry::Stats QueryRegistry::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

uint64_t QueryRegistry::ResultCount(uint64_t query_id) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(query_id);
  return it == entries_.end() ? 0 : it->second.results;
}

void QueryRegistry::RegisterWorker(const std::string& worker) {
  MutexLock lock(&mu_);
  worker_acks_.emplace(worker, 0);
}

void QueryRegistry::BindMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) return;
  MutexLock lock(&mu_);
  if (metrics_ == metrics) return;
  metrics_ = metrics;
  attaches_counter_ = metrics->GetCounter("registry.attaches");
  detaches_counter_ = metrics->GetCounter("registry.detaches");
  rewrites_counter_ = metrics->GetCounter("registry.rewrites_shared");
  slices_gc_counter_ = metrics->GetCounter("registry.slices_gc");
  queries_gauge_ = metrics->GetGauge("registry.queries");
  slices_shared_gauge_ = metrics->GetGauge("registry.slices_shared");
  // Replay counts accumulated before this job (pre-start attaches, or a
  // whole prior incarnation under the supervisor) into its fresh counters.
  attaches_counter_->Increment(stats_.attaches);
  detaches_counter_->Increment(stats_.detaches);
  rewrites_counter_->Increment(stats_.rewrites_shared);
  slices_gc_counter_->Increment(stats_.slices_gc);
  UpdateGaugesLocked();
}

void QueryRegistry::UnbindMetrics(MetricsRegistry* metrics) {
  MutexLock lock(&mu_);
  if (metrics_ != metrics) return;
  metrics_ = nullptr;
  attaches_counter_ = nullptr;
  detaches_counter_ = nullptr;
  rewrites_counter_ = nullptr;
  slices_gc_counter_ = nullptr;
  queries_gauge_ = nullptr;
  slices_shared_gauge_ = nullptr;
}

std::vector<QueryCommand> QueryRegistry::CommandsAfter(
    uint64_t after_seq) const {
  MutexLock lock(&mu_);
  std::vector<QueryCommand> out;
  // Sequence numbers are 1..log_.size() in order; slice the tail directly.
  if (after_seq < log_.size()) {
    out.assign(log_.begin() + static_cast<ptrdiff_t>(after_seq), log_.end());
  }
  return out;
}

void QueryRegistry::AckApplied(const std::string& worker, uint64_t seq,
                               uint64_t shared_slices, uint64_t slices_freed) {
  MutexLock lock(&mu_);
  worker_acks_[worker] = seq;
  worker_slices_[worker] = shared_slices;
  if (slices_freed > 0) {
    stats_.slices_gc += slices_freed;
    if (slices_gc_counter_ != nullptr) {
      slices_gc_counter_->Increment(slices_freed);
    }
  }
  UpdateGaugesLocked();
  ack_cv_.NotifyAll();
}

void QueryRegistry::Route(const Record& record) {
  ResultHandler handler;
  {
    MutexLock lock(&mu_);
    const uint64_t id =
        record.fields.size() > 3
            ? static_cast<uint64_t>(record.field(3).AsInt64())
            : 0;
    auto it = entries_.find(id);
    if (it != entries_.end()) {
      ++it->second.results;
      handler = it->second.handler;
    } else {
      handler = default_handler_;
    }
  }
  // Invoke outside the lock: handlers may call back into the registry.
  if (handler) handler(record);
}

void QueryRegistry::SetDefaultHandler(ResultHandler handler) {
  MutexLock lock(&mu_);
  default_handler_ = std::move(handler);
}

QueryPlacement QueryRegistry::ChoosePlacementLocked(
    const QueryDescriptor& d) const {
  // Marginal cost per *record* of each placement, in combine-equivalents.
  //
  // Shared slicer: the per-record partial update is already paid once for
  // everyone (that is the point of Cutty sharing), so the query's marginal
  // cost is its boundary work: one cut (O(log S) FlatFAT append) plus one
  // fire (O(log S) range-combine) per slide -- amortized over the
  // lambda * slide records that arrive per slide.
  //
  // Standalone (eager): ceil(range/slide) open windows contain each record,
  // and every one takes a combine -- no cuts, no shared-store fragmentation.
  //
  // Sharing wins for everything but pathological shapes (slide near the
  // record spacing with small range), where per-element cuts would shred
  // the shared store that all other tenants pay to search.
  const double lambda = options_.est_records_per_time;
  const double log_s = Log2Slices(options_.est_store_slices);
  const double records_per_slide =
      std::max(1.0, lambda * static_cast<double>(d.slide));
  const double shared_cost = 2.0 * log_s / records_per_slide;
  const double standalone_cost = std::ceil(static_cast<double>(d.range) /
                                           static_cast<double>(d.slide));
  return standalone_cost < shared_cost ? QueryPlacement::kStandalone
                                       : QueryPlacement::kShared;
}

bool QueryRegistry::FactorsThroughActiveLocked(
    const QueryDescriptor& d) const {
  for (const auto& [id, entry] : entries_) {
    if (entry.detach_seq != 0 ||
        entry.placement != QueryPlacement::kShared) {
      continue;
    }
    const QueryDescriptor& e = entry.desc;
    // Every begin of `d` lands on a cut already made for `e`: d's begins
    // are origin_d + k*slide_d, which all lie on e's begin grid iff slide_d
    // is a multiple of slide_e and the origins are congruent mod slide_e.
    if (d.slide % e.slide == 0 &&
        ((d.origin - e.origin) % e.slide + e.slide) % e.slide == 0) {
      return true;
    }
  }
  return false;
}

void QueryRegistry::UpdateGaugesLocked() {
  if (queries_gauge_ != nullptr) {
    queries_gauge_->Set(static_cast<double>(stats_.active_queries));
  }
  if (slices_shared_gauge_ != nullptr) {
    uint64_t total = 0;
    for (const auto& [subtask, slices] : worker_slices_) total += slices;
    slices_shared_gauge_->Set(static_cast<double>(total));
  }
}

}  // namespace streamline
