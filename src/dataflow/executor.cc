#include "dataflow/executor.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "common/logging.h"
#include "common/spsc_ring.h"
#include "dataflow/events.h"
#include "dataflow/graph_validator.h"
#include "dataflow/operator.h"
#include "dataflow/source.h"

namespace streamline {
namespace internal {

class Task;

namespace {

/// ChangelogSink writing each delta record as one CRC-framed WAL frame.
class WalChangelogSink : public ChangelogSink {
 public:
  explicit WalChangelogSink(WalWriter* wal) : wal_(wal) {}
  Status Append(std::string_view record) override {
    return wal_->Append(record);
  }

 private:
  WalWriter* wal_;
};

/// One data-plane edge instance: a lock-free SPSC event ring from one
/// upstream subtask into one downstream subtask, plus the reverse-direction
/// recycle ring that returns drained batch buffers to the producer. Both
/// rings are single-producer/single-consumer by construction -- every
/// (upstream subtask, downstream subtask) pair gets its own InputChannel.
struct InputChannel {
  InputChannel(size_t capacity, Doorbell* doorbell)
      : events(capacity, doorbell), recycle(capacity + 2) {}

  SpscChannel<StreamEvent> events;
  // Lossy buffer recycling: the consumer TryPushes drained
  // std::vector<Record> buffers back (dropped when full), the producer
  // TryPops them instead of allocating (allocates when empty). Steady
  // state ships batches with zero heap allocations.
  SpscRing<std::vector<Record>> recycle;
};

struct OutputTarget {
  InputChannel* channel = nullptr;
  // Per-target record buffer ("network buffer"): amortizes channel
  // synchronization over batch_size records.
  std::vector<Record> buffer;
  // Scheduler-mode backpressure: events that found the ring full wait
  // here, in order, and are re-offered before anything newer (see
  // PushEvent). Bounded by one morsel's output -- a task with pending
  // overflow stops consuming input until the queue drains.
  std::deque<StreamEvent> overflow;
};

struct OutputEdge {
  PartitionScheme scheme = PartitionScheme::kForward;
  KeySelector key;
  int key_field = -1;  // >= 0: hash this record field in place
  KeyHashFn key_hash;  // hash-only selector for generic (non-field) keys
  std::vector<OutputTarget> targets;  // indexed by downstream subtask
  uint64_t rr = 0;
};

// Records between ApproxBytes samples on the routing path: walking string
// fields per record is hot-path work, so bytes_out is sampled (every
// sampled record stands in for the whole stride).
constexpr uint64_t kBytesSampleStride = 32;

// Events drained from one channel before the poll loop moves on. One event
// is already a whole record batch, so amortization does not need a larger
// budget -- and visiting channels event-by-event keeps multi-input
// operators (joins, unions) close to arrival order and lets the combined
// watermark advance instead of one channel racing ahead by thousands of
// records.
constexpr size_t kDrainBudgetPerVisit = 1;

}  // namespace

/// One physical task: a chain of operators (possibly headed by a source),
/// with one SPSC input channel per upstream subtask, multiplexed
/// round-robin with per-channel watermark and barrier-alignment tracking.
/// Two execution modes drive it. The morsel scheduler (default) runs
/// bounded Step() calls on a fixed work-stealing pool, so a logical task is
/// just a schedulable unit and parallelism above the core count does not
/// add OS threads. Thread-per-task mode runs the blocking Run() body on a
/// dedicated thread. Both modes share all delivery, routing, and
/// checkpoint logic -- and because the pool serializes Step() calls per
/// task and channels stay FIFO, barrier positions and sink output are
/// byte-identical between them.
class Task : public Schedulable {
 public:
  Task(Job* job, std::vector<int> node_ids, int subtask, int parallelism)
      : job_(job), node_ids_(std::move(node_ids)), subtask_(subtask),
        parallelism_(parallelism) {}

  // --- construction-time setup (main thread) ------------------------------

  std::string base_name;   // e.g. "source->tokenize->count"
  std::string task_name;   // base_name + "#subtask"
  bool is_source = false;
  std::unique_ptr<SourceFunction> source;
  std::vector<std::unique_ptr<Operator>> ops;  // chain after optional source
  // One SPSC channel per upstream subtask, indexed by channel id; every
  // producer rings `doorbell` after a push so this task can park when all
  // channels are empty.
  std::vector<std::unique_ptr<InputChannel>> inputs;
  Doorbell doorbell;
  int num_inputs = 0;
  std::vector<int> channel_ordinal;
  std::vector<OutputEdge> outputs;
  size_t batch_size = 256;
  size_t idle_spin_budget = 64;
  // Fault injection (chaos testing): one site label per chain element,
  // "source:<name>" / "op:<name>". Null injector = no faults.
  FaultInjector* injector = nullptr;
  std::vector<std::string> sites;
  // Incremental checkpoints: non-null when barriers write changelog deltas
  // into an IncrementalSnapshotStore instead of full per-element snapshots.
  IncrementalSnapshotStore* inc_store = nullptr;

  int subtask() const { return subtask_; }
  int parallelism() const { return parallelism_; }
  const std::vector<int>& node_ids() const { return node_ids_; }

  Status Init() {
    // Build the collector chain: op i emits into op i+1; the last op emits
    // into the router.
    router_ = std::make_unique<RouterCollector>(this);
    collectors_.resize(ops.size());
    for (size_t i = ops.size(); i-- > 0;) {
      Collector* downstream =
          (i + 1 < ops.size()) ? static_cast<Collector*>(collectors_[i + 1].get())
                               : static_cast<Collector*>(router_.get());
      collectors_[i] = std::make_unique<ChainCollector>(
          this, i + 1 < ops.size() ? ops[i + 1].get() : nullptr,
          (is_source ? 1 : 0) + i + 1, downstream);
    }
    // Batch-at-a-time execution: whole channel events flow through
    // ProcessBatch chains. Disabled only at batch_size 1, which IS the
    // per-record path. Fault injection works on both paths: batch hops
    // probe a whole span of record hits at once (FaultInjector::OnSpan)
    // with accounting identical to the per-record probes.
    batch_path_ = batch_size > 1;
    if (batch_path_ && is_source) source_batch_.reserve(batch_size);
    OperatorContext ctx;
    ctx.subtask_index = subtask_;
    ctx.parallelism = parallelism_;
    ctx.task_name = task_name;
    ctx.metrics = job_->metrics();
    for (auto& op : ops) {
      STREAMLINE_RETURN_IF_ERROR(op->Open(ctx));
    }
    channel_wm_.assign(num_inputs, kMinTimestamp);
    channel_open_.assign(num_inputs, true);
    channel_aligned_.assign(num_inputs, false);
    open_channels_ = num_inputs;
    for (OutputEdge& edge : outputs) {
      for (OutputTarget& target : edge.targets) {
        target.buffer.reserve(batch_size);
      }
    }
    records_in_ = job_->metrics()->GetCounter("task." + base_name +
                                              ".records_in");
    records_out_ = job_->metrics()->GetCounter("task." + base_name +
                                               ".records_out");
    bytes_out_ = job_->metrics()->GetCounter("task." + base_name +
                                             ".bytes_out");
    watermark_gauge_ = job_->metrics()->GetGauge("task." + task_name +
                                                 ".watermark");
    return Status::Ok();
  }

  /// State key of chain element `i` (0 = source or first operator).
  std::string StateKey(size_t i) const {
    return "node" + std::to_string(node_ids_[i]) + "/" +
           std::to_string(subtask_);
  }

  Status RestoreFrom(SnapshotStore* store, uint64_t checkpoint_id) {
    size_t idx = 0;
    if (is_source) {
      auto bytes = store->Get(checkpoint_id, StateKey(idx));
      if (!bytes.ok()) return bytes.status();
      BinaryReader r(*bytes);
      STREAMLINE_RETURN_IF_ERROR(source->RestoreState(&r));
      ++idx;
    }
    for (auto& op : ops) {
      STREAMLINE_RETURN_IF_ERROR(
          RestoreElement(store, checkpoint_id, idx, op.get()));
      ++idx;
    }
    // This checkpoint becomes the parent of the next delta chain; if it
    // was a full snapshot (no manifest), the next barrier writes a base.
    chain_parent_cp_ = checkpoint_id;
    return Status::Ok();
  }

  /// Restores one operator element: base + changelog replay when the
  /// checkpoint has an incremental manifest for this key, full entry bytes
  /// otherwise. Replay re-performs the recorded structural operation
  /// sequence, so the recovered state is byte-identical to the full-
  /// snapshot path.
  Status RestoreElement(SnapshotStore* store, uint64_t checkpoint_id,
                        size_t idx, Operator* op) {
    const std::string key = StateKey(idx);
    if (inc_store != nullptr && inc_store->HasIncremental(checkpoint_id, key)) {
      auto snap = inc_store->GetIncremental(checkpoint_id, key);
      if (!snap.ok()) return snap.status();
      BinaryReader base(snap->base);
      STREAMLINE_RETURN_IF_ERROR(op->RestoreState(&base));
      for (const std::vector<std::string>& segment : snap->deltas) {
        for (const std::string& record : segment) {
          BinaryReader r(record);
          STREAMLINE_RETURN_IF_ERROR(op->ApplyDelta(&r));
        }
      }
      op->ResetDelta();  // replay must never record changelog events
      return Status::Ok();
    }
    auto bytes = store->Get(checkpoint_id, key);
    if (!bytes.ok()) return bytes.status();
    BinaryReader r(*bytes);
    return op->RestoreState(&r);
  }

  void RequestBarrier(uint64_t id) {
    pending_barrier_.store(id, std::memory_order_release);
  }

  /// Scheduler-mode wiring (main thread, before Start): pushes into any of
  /// this task's input channels notify it on the pool instead of ringing
  /// the doorbell, and output backpressure becomes help-out work.
  void AttachScheduler(WorkStealingPool* pool) {
    scheduler_mode_ = true;
    notify_waker_.pool = pool;
    notify_waker_.task = this;
    for (auto& in : inputs) in->events.set_waker(&notify_waker_);
  }

  /// True once the task ran its final morsel (scheduler mode only).
  bool done() const {
    return phase_.load(std::memory_order_acquire) == kPhaseDone;
  }

  /// One-line diagnostic snapshot for stall dumps (racy reads; the task
  /// may be running concurrently -- values are hints, not truth).
  std::string DebugString() const {
    std::string s = task_name;
    s += " phase=" + std::to_string(phase_.load(std::memory_order_relaxed));
    s += " sched=" + std::to_string(debug_sched_state());
    s += " steps=" + std::to_string(debug_steps_.load(std::memory_order_relaxed));
    s += " open=" + std::to_string(open_channels_);
    s += aligning_ ? " aligning" : "";
    s += finishing_ ? " finishing" : "";
    size_t ovf = 0;
    for (const auto& edge : outputs) {
      for (const auto& t : edge.targets) ovf += t.overflow.size();
    }
    if (ovf != 0) s += " overflow=" + std::to_string(ovf);
    const uint64_t pending = pending_barrier_.load(std::memory_order_relaxed);
    if (pending != 0) s += " pending_barrier=" + std::to_string(pending);
    for (size_t c = 0; c < inputs.size(); ++c) {
      s += " ch" + std::to_string(c) + "[sz=" +
           std::to_string(inputs[c]->events.size()) +
           (channel_open_[c] ? "" : " eos") +
           (inputs[c]->events.closed() ? " closed" : "") +
           (channel_aligned_[c] ? " aligned" : "") + "]";
    }
    return s;
  }

  // --- thread body ---------------------------------------------------------

  void Run() {
    try {
      if (is_source) {
        RunSource();
      } else {
        RunOperator();
      }
    } catch (const StatusError& e) {
      Fail(e.status());
    } catch (const std::exception& e) {
      Fail(Status::Internal("uncaught exception in task '" + task_name +
                            "': " + e.what()));
    } catch (...) {
      Fail(Status::Internal("uncaught non-standard exception in task '" +
                            task_name + "'"));
    }
    if (!task_status_.ok()) {
      job_->ReportTaskFailure(task_name, task_status_);
      AbortAndDrain();
    }
  }

  // --- morsel body (scheduler mode) ---------------------------------------

  /// One bounded morsel, the scheduler-mode unit of execution. The pool
  /// serializes Step calls per task (run-once claiming with
  /// acquire/release handover), so everything the thread body above
  /// touches stays effectively single-threaded even though successive
  /// morsels may run on different workers.
  bool Step() override {
    debug_steps_.fetch_add(1, std::memory_order_relaxed);
    const uint8_t phase = phase_.load(std::memory_order_relaxed);
    if (phase == kPhaseDone) return false;
    // Backpressure gate: stashed output must reach its rings before this
    // task consumes anything new (or finishes). Keep rescheduling until
    // the consumer makes room; FIFO requeues guarantee the consumer (and,
    // during barrier alignment, the peer producer whose barrier it waits
    // for) gets its turn in between.
    if (overflow_pending_ && !FlushOverflow()) {
      // Sustained failure means the consumer is behind; on oversubscribed
      // cores an unthrottled respin storm here takes the very CPU the
      // consumer needs to make room. Keep a short hot burst for latency,
      // then hand the core over.
      if (++flush_retry_streak_ >= kFlushRetryYieldThreshold) {
        flush_retry_streak_ = 0;
        std::this_thread::yield();
      }
      return true;
    }
    flush_retry_streak_ = 0;
    if (finishing_) {
      MarkDone();
      return false;
    }
    if (phase == kPhaseAborting) return StepAbort();
    try {
      const bool more = is_source ? StepSource() : StepOperator();
      if (task_status_.ok()) return more;
    } catch (const StatusError& e) {
      Fail(e.status());
    } catch (const std::exception& e) {
      Fail(Status::Internal("uncaught exception in task '" + task_name +
                            "': " + e.what()));
    } catch (...) {
      Fail(Status::Internal("uncaught non-standard exception in task '" +
                            task_name + "'"));
    }
    // Morselized mirror of Run()'s failure epilogue: report once, then
    // spread the abort-drain over subsequent morsels.
    job_->ReportTaskFailure(task_name, task_status_);
    BeginAbort();
    return StepAbort();
  }

 private:
  class RouterCollector : public Collector {
   public:
    explicit RouterCollector(Task* task) : task_(task) {}
    void Emit(Record&& record) override {
      task_->RouteRecord(std::move(record));
    }
    void EmitBatch(std::vector<Record>&& batch) override {
      task_->RouteBatch(std::move(batch));
    }

   private:
    Task* task_;
  };

  class ChainCollector : public Collector {
   public:
    ChainCollector(Task* task, Operator* next, size_t next_element,
                   Collector* downstream)
        : task_(task), next_(next), next_element_(next_element),
          downstream_(downstream) {}
    void Emit(Record&& record) override {
      if (next_ != nullptr) {
        if (!task_->InjectFault(next_element_)) return;
        next_->ProcessRecord(0, std::move(record), downstream_);
      } else {
        downstream_->Emit(std::move(record));
      }
    }
    /// Batch hop: the whole batch moves to the next chain element in one
    /// virtual call. Fault sites fire here too: one span probe covers the
    /// batch with per-record hit accounting, the prefix before a fired
    /// fault is processed, and the rest is dropped -- the per-record
    /// path's semantics at batch granularity.
    void EmitBatch(std::vector<Record>&& batch) override {
      if (next_ == nullptr) {
        downstream_->EmitBatch(std::move(batch));
        return;
      }
      if (task_->injector != nullptr) {
        FaultInjector::SpanFault fault =
            task_->injector->OnSpan(task_->sites[next_element_], batch.size());
        if (fault.fired) {
          batch.resize(fault.passed);
          if (!batch.empty()) {
            next_->ProcessBatch(0, std::move(batch), downstream_);
          }
          task_->RaiseSpanFault(std::move(fault));
          return;
        }
      }
      next_->ProcessBatch(0, std::move(batch), downstream_);
    }

   private:
    Task* task_;
    Operator* next_;         // operator this collector feeds (null: router)
    size_t next_element_;    // chain-element index of `next_` (fault site)
    Collector* downstream_;  // what `next_` emits into
  };

  class SourceTaskContext : public SourceContext {
   public:
    explicit SourceTaskContext(Task* task) : task_(task) {}
    bool Emit(Record&& record) override {
      // Barriers are injected between records: the snapshot sees the source
      // position before this record, and the barrier is broadcast before
      // the record travels downstream. (The barrier handler flushes the
      // pending source batch first, so batching never reorders a record
      // across a barrier.)
      task_->MaybeHandleSourceBarrier();
      if (!task_->task_status_.ok() ||
          task_->job_->cancelled_.load(std::memory_order_relaxed)) {
        return false;
      }
      if (!task_->InjectFault(0)) {
        // Prefix parity with the per-record path, which had already
        // delivered the staged records: flush them before the task fails.
        task_->FlushSourceBatch();
        return false;
      }
      task_->BufferSourceRecord(std::move(record));
      // A chained operator or sink may have failed while processing this
      // record (recorded via Fail); stop emitting then.
      return task_->task_status_.ok();
    }
    bool EmitSpan(Record* records, size_t n) override {
      if (!task_->batch_path_) {
        // Per-record path (bs=1 or fault injection): keep the exact
        // per-emission semantics, including per-record fault sites.
        for (size_t i = 0; i < n; ++i) {
          if (!Emit(std::move(records[i]))) return false;
        }
        return true;
      }
      // Batch path: barrier and cancellation checks once per span. The
      // barrier handler flushes the pending source batch before
      // broadcasting, and the snapshot sees the source position before
      // this span, so restore replays exactly the unemitted suffix.
      task_->MaybeHandleSourceBarrier();
      if (!task_->task_status_.ok() ||
          task_->job_->cancelled_.load(std::memory_order_relaxed)) {
        return false;
      }
      if (task_->injector != nullptr) {
        FaultInjector::SpanFault fault =
            task_->injector->OnSpan(task_->sites[0], n);
        if (fault.fired) {
          // Per-record parity: records before the fault still travel the
          // full chain (the per-record path had already delivered them).
          task_->BufferSourceSpan(records, fault.passed);
          task_->FlushSourceBatch();
          task_->RaiseSpanFault(std::move(fault));  // kThrow leaves here
          return false;
        }
      }
      task_->BufferSourceSpan(records, n);
      return task_->task_status_.ok();
    }
    bool EmitBatch(std::vector<Record>&& batch) override {
      if (!task_->batch_path_) {
        // Per-record path: preserve exact per-emission semantics.
        for (Record& r : batch) {
          if (!Emit(std::move(r))) {
            batch.clear();
            return false;
          }
        }
        batch.clear();
        return true;
      }
      task_->MaybeHandleSourceBarrier();
      if (!task_->task_status_.ok() ||
          task_->job_->cancelled_.load(std::memory_order_relaxed)) {
        batch.clear();
        return false;
      }
      if (task_->injector != nullptr) {
        FaultInjector::SpanFault fault =
            task_->injector->OnSpan(task_->sites[0], batch.size());
        if (fault.fired) {
          // Same prefix parity as EmitSpan.
          task_->BufferSourceSpan(batch.data(), fault.passed);
          batch.clear();
          task_->FlushSourceBatch();
          task_->RaiseSpanFault(std::move(fault));
          return false;
        }
      }
      if (batch.size() > task_->batch_size) {
        // Oversized batch: re-chunk through the staging buffer so the
        // configured batch granularity holds downstream.
        task_->BufferSourceSpan(batch.data(), batch.size());
        batch.clear();
        return task_->task_status_.ok();
      }
      // Any records staged via Emit() must go first to preserve order.
      task_->FlushSourceBatch();
      if (!task_->task_status_.ok()) return false;
      // Straight into the chain: no per-record staging move. DeliverBatch
      // threads the vector's identity through in-place chain hops, so the
      // caller usually gets its capacity back for the next batch.
      task_->DeliverBatch(0, std::move(batch));
      return task_->task_status_.ok();
    }
    size_t PreferredBatchSize() const override {
      return task_->batch_path_ ? task_->batch_size : 1;
    }
    void EmitWatermark(Timestamp wm) override {
      task_->DeliverWatermark(wm);
    }
    void HandleIdle() override {
      // An idle source must not sit on batched records or partially-filled
      // output buffers (downstream would starve), and must service pending
      // barriers.
      task_->FlushSourceBatch();
      task_->FlushAllBuffers();
      task_->MaybeHandleSourceBarrier();
    }
    bool IsCancelled() const override {
      return task_->job_->cancelled_.load(std::memory_order_relaxed);
    }

   private:
    Task* task_;
  };

  void RunSource() {
    SourceTaskContext ctx(this);
    Status st = source->Run(&ctx);
    // Fail() keeps the first error: a fault recorded mid-Emit wins over
    // whatever the source returned in response to the rejected Emit.
    if (!st.ok()) Fail(std::move(st));
    if (!task_status_.ok()) return;  // Run() takes the abort path
    FlushSourceBatch();
    if (!task_status_.ok()) return;  // flush may fail a chained operator
    // A checkpoint triggered while the source was finishing must still
    // complete.
    MaybeHandleSourceBarrier();
    DeliverWatermark(kMaxTimestamp);
    FinishChain();
  }

  void RunOperator() {
    // Round-robin over the input channels; a channel is skipped while it is
    // closed or already aligned for the in-flight barrier (its producer
    // simply backs up -- that IS the alignment, no stashing needed, because
    // each producer owns exactly one channel into this task). After a full
    // pass with no progress the thread spins briefly, then parks on the
    // doorbell until some producer pushes.
    size_t idle_spins = 0;
    while (open_channels_ > 0 && task_status_.ok()) {
      size_t drained = 0;
      for (size_t c = 0; c < inputs.size(); ++c) {
        drained += DrainChannel(c, kDrainBudgetPerVisit);
      }
      if (drained > 0) {
        idle_spins = 0;
        continue;
      }
      if (idle_spins < idle_spin_budget) {
        ++idle_spins;
        std::this_thread::yield();
        continue;
      }
      idle_spins = 0;
      doorbell.Park([this] { return AnyInputReady(); });
    }
    if (!task_status_.ok()) return;  // Run() takes the abort path
    if (task_wm_ < kMaxTimestamp) DeliverWatermark(kMaxTimestamp);
    FinishChain();
  }

  /// Source morsel: service any pending barrier, then a few polls. An
  /// idle source goes quiet (the job's 1 ms source timer re-notifies it);
  /// an exhausted or cancelled source runs RunSource()'s epilogue.
  bool StepSource() {
    MaybeHandleSourceBarrier();
    if (!task_status_.ok()) return true;
    if (job_->cancelled_.load(std::memory_order_relaxed)) {
      return FinishSource();
    }
    SourceTaskContext ctx(this);
    constexpr int kPollsPerMorsel = 4;
    for (int i = 0; i < kPollsPerMorsel; ++i) {
      Result<SourcePoll> polled = source->Poll(&ctx);
      if (!polled.ok()) {
        // Fail() keeps the first error, exactly like RunSource.
        Fail(polled.status());
        return true;
      }
      if (!task_status_.ok()) return true;
      switch (*polled) {
        case SourcePoll::kHasMore:
          break;
        case SourcePoll::kIdle:
          // Same contract as the thread-mode idle loop (HandleIdle): flush
          // staged output and service barriers before going quiet.
          FlushSourceBatch();
          FlushAllBuffers();
          MaybeHandleSourceBarrier();
          return !task_status_.ok() || overflow_pending_;
        case SourcePoll::kExhausted:
          return FinishSource();
      }
      if (job_->cancelled_.load(std::memory_order_relaxed)) {
        return FinishSource();
      }
      // A downstream ring filled up: stop polling and reschedule; Step's
      // preamble re-offers the overflow until the consumer makes room.
      if (overflow_pending_) return true;
    }
    return true;
  }

  /// Exhaustion/cancellation epilogue, exactly RunSource()'s tail. Returns
  /// false after marking the task done; true on failure (the Step wrapper
  /// takes the abort path).
  bool FinishSource() {
    FlushSourceBatch();
    if (!task_status_.ok()) return true;
    MaybeHandleSourceBarrier();
    DeliverWatermark(kMaxTimestamp);
    FinishChain();
    if (!task_status_.ok()) return true;
    return FinishMorsel();
  }

  /// Completion epilogue shared by every finish path: the task is done as
  /// soon as its stashed output (if any) has drained into the rings.
  bool FinishMorsel() {
    if (overflow_pending_) {
      finishing_ = true;
      return true;  // requeue; Step's preamble drains, then marks done
    }
    MarkDone();
    return false;
  }

  /// Operator morsel: drain a bounded number of events round-robin across
  /// the input channels, then either requeue (work left), go idle (every
  /// producer's next push notifies us), or finish (all inputs closed).
  bool StepOperator() {
    constexpr size_t kPassesPerMorsel = 8;
    for (size_t pass = 0; pass < kPassesPerMorsel && open_channels_ > 0 &&
                          task_status_.ok() && !overflow_pending_;
         ++pass) {
      size_t drained = 0;
      for (size_t c = 0; c < inputs.size(); ++c) {
        drained += DrainChannel(c, kDrainBudgetPerVisit);
      }
      if (drained == 0) break;
    }
    if (!task_status_.ok()) return true;
    if (open_channels_ == 0) {
      if (task_wm_ < kMaxTimestamp) DeliverWatermark(kMaxTimestamp);
      FinishChain();
      if (!task_status_.ok()) return true;
      return FinishMorsel();
    }
    // A push racing with this check is not lost: the producer's Notify
    // lands as kRunningNotified and the pool requeues us.
    return AnyInputReady() || overflow_pending_;
  }

  void MarkDone() {
    phase_.store(kPhaseDone, std::memory_order_release);
    job_->TaskFinished();
  }

  size_t DrainChannel(size_t c, size_t budget) {
    size_t drained = 0;
    StreamEvent ev;
    while (drained < budget && channel_open_[c] && task_status_.ok() &&
           !(aligning_ && channel_aligned_[c]) &&
           inputs[c]->events.TryPop(&ev)) {
      Dispatch(static_cast<int>(c), std::move(ev));
      ++drained;
    }
    return drained;
  }

  bool AnyInputReady() const {
    if (open_channels_ == 0) return true;
    for (size_t c = 0; c < inputs.size(); ++c) {
      if (!channel_open_[c]) continue;
      if (aligning_ && channel_aligned_[c]) continue;
      if (!inputs[c]->events.Empty()) return true;
    }
    return false;
  }

  void FinishChain() {
    for (size_t i = 0; i < ops.size(); ++i) {
      ops[i]->OnEndOfInput(collectors_[i].get());
    }
    for (auto& op : ops) {
      Status st = op->Close();
      if (!st.ok()) {
        Fail(Status(st.code(),
                    "close of '" + op->Name() + "' failed: " + st.message()));
      }
    }
    if (!task_status_.ok()) return;  // Run() takes the abort path
    Broadcast(StreamEvent::EndOfStream());
  }

  void Dispatch(int c, StreamEvent&& event) {
    switch (event.kind) {
      case StreamEvent::Kind::kRecord:
        records_in_->Increment();
        DeliverRecord(channel_ordinal[c], std::move(event.record));
        break;
      case StreamEvent::Kind::kBatch:
        records_in_->Increment(event.batch.size());
        if (batch_path_) {
          // Batch-at-a-time: the whole event flows through the operator
          // chain in one ProcessBatch call per hop. Most batch overrides
          // transform in place, so `event.batch` usually keeps its
          // identity (and capacity) all the way through and gets recycled
          // below.
          DeliverBatch(channel_ordinal[c], std::move(event.batch));
        } else {
          // lint:allow(virtual-per-record-loop): per-record path kept for
          // fault injection (per-record fault-hit accounting)
          for (Record& r : event.batch) {
            if (!task_status_.ok()) break;  // crash-like: drop the rest
            DeliverRecord(channel_ordinal[c], std::move(r));
          }
        }
        // Hand the drained buffer back to the producer for reuse; if the
        // recycle ring is full the vector just frees here.
        event.batch.clear();
        if (event.batch.capacity() > 0) {
          inputs[c]->recycle.TryPush(std::move(event.batch));
        }
        break;
      case StreamEvent::Kind::kWatermark:
        channel_wm_[c] = std::max(channel_wm_[c], event.watermark);
        RecomputeWatermark();
        break;
      case StreamEvent::Kind::kBarrier:
        HandleBarrier(c, event.barrier_id);
        break;
      case StreamEvent::Kind::kEndOfStream:
        if (channel_open_[c]) {
          channel_open_[c] = false;
          --open_channels_;
        }
        CheckAlignmentComplete();
        RecomputeWatermark();
        break;
    }
  }

  void DeliverRecord(int ordinal, Record&& record) {
    if (ops.empty()) {
      RouteRecord(std::move(record));
      return;
    }
    // ops[0] is chain element 0 of an operator task, element 1 behind a
    // source (element 0 is the source itself, injected in Emit).
    if (!InjectFault(is_source ? 1 : 0)) return;
    ops[0]->ProcessRecord(ordinal, std::move(record), collectors_[0].get());
  }

  /// Batch-path twin of DeliverRecord: hands the whole batch to the chain
  /// head in one call. The head element's fault site fires via a span
  /// probe with per-record hit accounting (see ChainCollector::EmitBatch).
  void DeliverBatch(int ordinal, std::vector<Record>&& batch) {
    if (batch.empty()) return;
    if (ops.empty()) {
      RouteBatch(std::move(batch));
      return;
    }
    if (injector != nullptr) {
      FaultInjector::SpanFault fault =
          injector->OnSpan(sites[is_source ? 1 : 0], batch.size());
      if (fault.fired) {
        batch.resize(fault.passed);
        if (!batch.empty()) {
          ops[0]->ProcessBatch(ordinal, std::move(batch),
                               collectors_[0].get());
        }
        RaiseSpanFault(std::move(fault));
        return;
      }
    }
    ops[0]->ProcessBatch(ordinal, std::move(batch), collectors_[0].get());
  }

  /// Source-side batching: records a source Emit()s accumulate here and
  /// travel through the chain batch-at-a-time. Flushed eagerly before
  /// every control event (watermark, barrier, idle, end of input) so
  /// batching never reorders records against control flow.
  void BufferSourceRecord(Record&& record) {
    if (!batch_path_) {
      DeliverRecord(0, std::move(record));
      return;
    }
    source_batch_.push_back(std::move(record));
    if (source_batch_.size() >= batch_size) FlushSourceBatch();
  }

  /// Span twin of BufferSourceRecord: appends a contiguous run of records
  /// to the pending source batch, flushing at batch-size boundaries. Only
  /// reached with batch_path_ set. The inner loop is just a move per
  /// record -- no per-record virtual dispatch or status checks.
  void BufferSourceSpan(Record* records, size_t n) {
    size_t i = 0;
    while (i < n) {
      const size_t room = batch_size - source_batch_.size();
      const size_t take = std::min(room, n - i);
      for (size_t k = 0; k < take; ++k) {
        // The span usually streams out of a cold source vector; pull the
        // next lines in while the current record is being moved.
        __builtin_prefetch(records + i + k + 8);
        source_batch_.push_back(std::move(records[i + k]));
      }
      i += take;
      if (source_batch_.size() >= batch_size) {
        FlushSourceBatch();
        if (!task_status_.ok()) return;  // chained failure: drop the rest
      }
    }
  }

  void FlushSourceBatch() {
    if (source_batch_.empty()) return;
    // DeliverBatch preserves the vector's identity through in-place chain
    // hops, so source_batch_ keeps its capacity for the next fill.
    DeliverBatch(0, std::move(source_batch_));
    source_batch_.clear();
  }

  void DeliverWatermark(Timestamp wm) {
    // Records emitted before this watermark must reach the operators
    // before it does (no-op on operator tasks).
    FlushSourceBatch();
    for (size_t i = 0; i < ops.size(); ++i) {
      ops[i]->ProcessWatermark(wm, collectors_[i].get());
    }
    Broadcast(StreamEvent::OfWatermark(wm));
  }

  void RecomputeWatermark() {
    if (open_channels_ == 0) return;  // final watermark handled at loop exit
    Timestamp min_wm = kMaxTimestamp;
    for (int c = 0; c < num_inputs; ++c) {
      if (channel_open_[c]) min_wm = std::min(min_wm, channel_wm_[c]);
    }
    if (min_wm > task_wm_) {
      task_wm_ = min_wm;
      watermark_gauge_->Set(static_cast<double>(min_wm));
      DeliverWatermark(min_wm);
    }
  }

  void HandleBarrier(int channel, uint64_t id) {
    if (!aligning_) {
      aligning_ = true;
      barrier_id_ = id;
      std::fill(channel_aligned_.begin(), channel_aligned_.end(), false);
    } else {
      STREAMLINE_CHECK_EQ(barrier_id_, id)
          << "overlapping checkpoints are not supported";
    }
    channel_aligned_[channel] = true;
    CheckAlignmentComplete();
  }

  void CheckAlignmentComplete() {
    if (!aligning_) return;
    for (int c = 0; c < num_inputs; ++c) {
      if (channel_open_[c] && !channel_aligned_[c]) return;
    }
    // Every live input delivered the barrier: state is consistent. The
    // poll loop resumes the aligned channels once `aligning_` drops; any
    // events they buffered meanwhile were simply never popped.
    SnapshotChain(barrier_id_);
    // A failed snapshot means this checkpoint is dead: committing it at
    // the sinks (OnBarrier) or forwarding the barrier would make an
    // incomplete checkpoint look durable downstream.
    if (task_status_.ok()) {
      for (auto& op : ops) op->OnBarrier(barrier_id_);
      Broadcast(StreamEvent::OfBarrier(barrier_id_));
    }
    aligning_ = false;
  }

  void MaybeHandleSourceBarrier() {
    // Called between every two source records: keep the common no-barrier
    // case a plain load, not an atomic RMW.
    if (pending_barrier_.load(std::memory_order_acquire) == 0) return;
    const uint64_t id = pending_barrier_.exchange(0, std::memory_order_acq_rel);
    if (id == 0) return;
    // Records emitted before the barrier must be in operator state before
    // the snapshot (the snapshotted source position already covers them).
    FlushSourceBatch();
    if (!task_status_.ok()) return;
    // Checkpoint barriers persist chain state durably (fsync) by design:
    // the cost is bounded per barrier, not per record, and asynchronous
    // snapshot upload is tracked as a roadmap item.
    // analyzer:allow(block-in-morsel): barrier snapshots are synchronously durable by design
    SnapshotChain(id);
    if (!task_status_.ok()) return;  // dead checkpoint: do not commit/forward
    for (auto& op : ops) op->OnBarrier(id);
    Broadcast(StreamEvent::OfBarrier(id));
  }

  /// Checkpoint-time fault hook for chain element `idx` ("task X fails on
  /// checkpoint K"). kThrow faults throw out of OnCheckpoint.
  Status CheckpointFault(size_t idx, uint64_t checkpoint_id) {
    if (injector == nullptr) return Status::Ok();
    return injector->OnCheckpoint(sites[idx], checkpoint_id);
  }

  void SnapshotChain(uint64_t checkpoint_id) {
    SnapshotStore* store = job_->snapshot_store();
    STREAMLINE_CHECK(store != nullptr);
    size_t idx = 0;
    Status st = Status::Ok();
    if (is_source) {
      st = CheckpointFault(idx, checkpoint_id);
      if (st.ok()) {
        BinaryWriter w;
        st = source->SnapshotState(&w);
        // A failed write (ENOSPC, short write) fails the checkpoint -- and
        // the task -- with the failing path in the message.
        if (st.ok()) st = store->Put(checkpoint_id, StateKey(idx), w.Release());
      }
      ++idx;
    }
    for (auto& op : ops) {
      if (!st.ok()) break;
      st = CheckpointFault(idx, checkpoint_id);
      if (st.ok()) st = SnapshotElement(store, checkpoint_id, idx, op.get());
      ++idx;
    }
    if (!st.ok()) {
      // The task never acks, so the checkpoint stays incomplete and is
      // never a restore candidate. The failure takes the job down.
      Fail(Status(st.code(), "checkpoint " + std::to_string(checkpoint_id) +
                                 " failed: " + st.message()));
      return;
    }
    // Every element persisted: this checkpoint heads the delta chain the
    // next barrier extends. Only advanced on success -- a failed or
    // crashed barrier leaves the chain parented at the last durable one.
    chain_parent_cp_ = checkpoint_id;
    if (job_->coordinator_ != nullptr) {
      job_->coordinator_->AckTask(checkpoint_id);
    }
  }

  /// Persists one operator element at a barrier. Incremental mode writes
  /// the changelog delta into a sealed WAL segment (or a compacted base
  /// when the chain outgrew the threshold); everything else -- and every
  /// operator without delta support -- takes the full SnapshotState path.
  Status SnapshotElement(SnapshotStore* store, uint64_t checkpoint_id,
                         size_t idx, Operator* op) {
    if (inc_store != nullptr && op->SupportsIncrementalState()) {
      const std::string key = StateKey(idx);
      if (inc_store->NeedsBase(key, chain_parent_cp_)) {
        BinaryWriter w;
        STREAMLINE_RETURN_IF_ERROR(op->SnapshotState(&w));
        STREAMLINE_RETURN_IF_ERROR(
            inc_store->PutBase(checkpoint_id, key, w.Release()));
        // The base captured everything; pending delta events are stale.
        op->ResetDelta();
        return Status::Ok();
      }
      auto wal = inc_store->OpenDeltaSegment(checkpoint_id, key);
      if (!wal.ok()) return wal.status();
      WalChangelogSink sink(wal->get());
      STREAMLINE_RETURN_IF_ERROR(op->SnapshotDelta(&sink));
      return inc_store->SealDeltas(checkpoint_id, key, chain_parent_cp_,
                                   std::move(*wal));
    }
    BinaryWriter w;
    STREAMLINE_RETURN_IF_ERROR(op->SnapshotState(&w));
    return store->Put(checkpoint_id, StateKey(idx), w.Release());
  }

  /// Records the first failure; later ones lose (user code downstream of a
  /// fault often fails too, with less interesting errors). Task thread
  /// only.
  void Fail(Status st) {
    if (task_status_.ok() && !st.ok()) task_status_ = std::move(st);
  }

  /// Fires any matching injected fault for chain element `element`.
  /// Returns false when a Status fault fired (the task is now failing);
  /// kThrow faults leave by exception.
  bool InjectFault(size_t element) {
    if (injector == nullptr) return true;
    Status st = injector->OnHit(sites[element]);
    if (!st.ok()) {
      Fail(std::move(st));
      return false;
    }
    return true;
  }

  /// Applies a span fault after its passed prefix was processed, exactly
  /// where the per-record path would have: kThrow leaves by exception
  /// (like OnHit), kStatus fails the task (like InjectFault).
  void RaiseSpanFault(FaultInjector::SpanFault&& fault) {
    if (fault.kind == FaultInjector::FaultKind::kThrow) {
      throw std::runtime_error(fault.message);
    }
    Fail(std::move(fault.status));
  }

  /// Crash-like teardown after a failure, first half: drop buffered
  /// (uncommitted) output and push end-of-stream so downstream tasks
  /// terminate. The drain that follows (StepAbort morsels, or the blocking
  /// loop in AbortAndDrain for thread-per-task mode) is what unblocks
  /// upstream tasks backed up on a full ring; without it a failed consumer
  /// would deadlock its producers.
  void BeginAbort() {
    source_batch_.clear();  // uncommitted, dropped like buffered output
    for (OutputEdge& edge : outputs) {
      for (OutputTarget& target : edge.targets) {
        target.buffer.clear();
        StreamEvent eos = StreamEvent::EndOfStream();
        PushEvent(target, std::move(eos));
      }
    }
    aligning_ = false;  // stop skipping aligned channels
    phase_.store(kPhaseAborting, std::memory_order_relaxed);
  }

  /// Abort-drain morsel: discard whatever the inputs hold until every
  /// producer's EOS arrived. Goes idle between pushes -- each producer
  /// push notifies this task. Barriers drained here are deliberately not
  /// acked: a checkpoint interrupted by the failure must stay incomplete.
  bool StepAbort() {
    StreamEvent ev;
    size_t drained = 0;
    for (size_t c = 0; c < inputs.size(); ++c) {
      while (channel_open_[c] && inputs[c]->events.TryPop(&ev)) {
        if (ev.kind == StreamEvent::Kind::kEndOfStream) {
          channel_open_[c] = false;
          --open_channels_;
        }
        ++drained;
      }
    }
    if (open_channels_ == 0) return FinishMorsel();
    return drained > 0;
  }

  void AbortAndDrain() {
    BeginAbort();
    size_t idle_spins = 0;
    StreamEvent ev;
    while (open_channels_ > 0) {
      size_t drained = 0;
      for (size_t c = 0; c < inputs.size(); ++c) {
        while (channel_open_[c] && inputs[c]->events.TryPop(&ev)) {
          if (ev.kind == StreamEvent::Kind::kEndOfStream) {
            channel_open_[c] = false;
            --open_channels_;
          }
          ++drained;
        }
      }
      if (drained > 0) {
        idle_spins = 0;
        continue;
      }
      if (idle_spins < idle_spin_budget) {
        ++idle_spins;
        std::this_thread::yield();
        continue;
      }
      idle_spins = 0;
      doorbell.Park([this] { return AnyInputReady(); });
    }
  }

  void RouteRecord(Record&& record) {
    // Metric updates are batched: per-record atomic RMWs and per-record
    // ApproxBytes walks both show up on profiles. Record counts stay exact
    // (flushed with every shipped batch); bytes are sampled, with every
    // kBytesSampleStride-th record standing in for the whole stride.
    ++pending_records_out_;
    if ((route_count_++ & (kBytesSampleStride - 1)) == 0) {
      pending_bytes_out_ += record.ApproxBytes() * kBytesSampleStride;
    }
    for (size_t e = 0; e < outputs.size(); ++e) {
      OutputEdge& edge = outputs[e];
      const bool last_edge = (e + 1 == outputs.size());
      switch (edge.scheme) {
        case PartitionScheme::kForward: {
          record.key_hash = Record::kNoKeyHash;
          // analyzer:allow(record-copy-in-hot-path): non-last edges must keep the record; only the final edge may move it
          Push(edge.targets[subtask_],
               last_edge ? std::move(record) : record);
          break;
        }
        case PartitionScheme::kHash: {
          // Hash-once: compute the key hash here and stamp it on the
          // record, so the keyed operator behind this edge indexes its
          // state with the carried hash instead of re-hashing. A plain
          // field key is hashed in place; a generic key goes through the
          // edge's hash-only selector. An inbound key_hash is never
          // trusted (it may belong to a different edge's key).
          const uint64_t h = edge.key_field >= 0
                                 ? KeyHashOf(record.fields[edge.key_field])
                                 : edge.key_hash(record);
          record.key_hash = h;
          // analyzer:allow(record-copy-in-hot-path): non-last edges must keep the record; only the final edge may move it
          Push(edge.targets[h % edge.targets.size()],
               last_edge ? std::move(record) : record);
          break;
        }
        case PartitionScheme::kRebalance: {
          // Reset the carried hash on non-hash edges: a stale hash from an
          // upstream shuffle keyed differently must never reach a keyed
          // operator looking like its own.
          record.key_hash = Record::kNoKeyHash;
          const size_t target = edge.rr++ % edge.targets.size();
          // analyzer:allow(record-copy-in-hot-path): non-last edges must keep the record; only the final edge may move it
          Push(edge.targets[target], last_edge ? std::move(record) : record);
          break;
        }
        case PartitionScheme::kBroadcast: {
          record.key_hash = Record::kNoKeyHash;
          // Fan out with copies to all but the final target; the final
          // target takes the move when this is also the last edge.
          const size_t fanout = edge.targets.size();
          for (size_t t = 0; t + 1 < fanout; ++t) {
            // analyzer:allow(record-copy-in-hot-path): broadcast must hand every non-final target its own copy
            Push(edge.targets[t], record);
          }
          // analyzer:allow(record-copy-in-hot-path): non-last edges must keep the record; only the final edge may move it
          Push(edge.targets[fanout - 1],
               last_edge ? std::move(record) : record);
          break;
        }
      }
    }
  }

  /// Batch-path twin of RouteRecord: partitions a whole batch in one pass.
  /// The common single-edge case gets a tight per-scheme loop (hash
  /// stamping + target push, no per-record dispatch); multi-edge plans
  /// fall back to the per-record router.
  void RouteBatch(std::vector<Record>&& batch) {
    if (batch.empty()) return;
    if (outputs.empty()) {
      // Terminal chain (sink emitted nothing downstream of it); count the
      // records like RouteRecord would.
      CountRoutedBatch(batch);
      batch.clear();
      return;
    }
    if (outputs.size() != 1) {
      for (Record& record : batch) RouteRecord(std::move(record));
      batch.clear();
      return;
    }
    CountRoutedBatch(batch);
    OutputEdge& edge = outputs[0];
    const size_t num_targets = edge.targets.size();
    switch (edge.scheme) {
      case PartitionScheme::kForward: {
        OutputTarget& target = edge.targets[subtask_];
        for (Record& record : batch) {
          record.key_hash = Record::kNoKeyHash;
          target.buffer.push_back(std::move(record));
        }
        if (target.buffer.size() >= batch_size) FlushTarget(&target);
        break;
      }
      case PartitionScheme::kHash: {
        // Hash-once, one pass: stamp every record's key hash and scatter
        // into the per-target buffers (see RouteRecord for the stamping
        // contract).
        if (edge.key_field >= 0) {
          const int field = edge.key_field;
          for (Record& record : batch) {
            const uint64_t h = KeyHashOf(record.fields[field]);
            record.key_hash = h;
            OutputTarget& target = edge.targets[h % num_targets];
            target.buffer.push_back(std::move(record));
            if (target.buffer.size() >= batch_size) FlushTarget(&target);
          }
        } else {
          for (Record& record : batch) {
            const uint64_t h = edge.key_hash(record);
            record.key_hash = h;
            OutputTarget& target = edge.targets[h % num_targets];
            target.buffer.push_back(std::move(record));
            if (target.buffer.size() >= batch_size) FlushTarget(&target);
          }
        }
        break;
      }
      case PartitionScheme::kRebalance: {
        for (Record& record : batch) {
          record.key_hash = Record::kNoKeyHash;
          OutputTarget& target = edge.targets[edge.rr++ % num_targets];
          target.buffer.push_back(std::move(record));
          if (target.buffer.size() >= batch_size) FlushTarget(&target);
        }
        break;
      }
      case PartitionScheme::kBroadcast: {
        for (Record& record : batch) {
          record.key_hash = Record::kNoKeyHash;
          // Copies go to all but the final target; the batch owns its
          // records, so the final target always takes the move.
          for (size_t t = 0; t + 1 < num_targets; ++t) {
            // analyzer:allow(record-copy-in-hot-path): broadcast must hand every non-final target its own copy
            Push(edge.targets[t], record);
          }
          Push(edge.targets[num_targets - 1], std::move(record));
        }
        break;
      }
    }
    batch.clear();
  }

  /// Batched routing metrics, same cadence as RouteRecord: record counts
  /// exact, bytes sampled every kBytesSampleStride-th routed record.
  void CountRoutedBatch(const std::vector<Record>& batch) {
    pending_records_out_ += batch.size();
    const uint64_t mask = kBytesSampleStride - 1;
    size_t off = static_cast<size_t>((kBytesSampleStride -
                                      (route_count_ & mask)) & mask);
    for (; off < batch.size(); off += kBytesSampleStride) {
      pending_bytes_out_ += batch[off].ApproxBytes() * kBytesSampleStride;
    }
    route_count_ += batch.size();
  }

  void Push(OutputTarget& target, Record record) {
    target.buffer.push_back(std::move(record));
    if (target.buffer.size() >= batch_size) FlushTarget(&target);
  }

  /// Ships one event into a downstream channel. Thread-per-task mode
  /// blocks inside Push (the producer owns a whole thread). A scheduler
  /// task must never block a worker -- and must not run other tasks from
  /// inside a push either: "helping" suspends this task mid-Step while it
  /// still holds its run-once claim, and any helped task that then blocks
  /// on a channel only this suspended task can drain deadlocks the whole
  /// stack (suspended claims put cycles in the wait graph even though the
  /// dataflow itself is acyclic). Instead a full ring stashes the event
  /// in the per-target overflow queue and the task simply reschedules:
  /// its morsel loop stops consuming input and re-offers the overflow
  /// (oldest first, so per-target order holds) until the consumer makes
  /// room. Backpressure becomes scheduling state instead of a blocked
  /// thread, which is what makes workers < tasks deadlock-free.
  void PushEvent(OutputTarget& target, StreamEvent&& event) {
    InputChannel* ch = target.channel;
    if (!scheduler_mode_) {
      // analyzer:allow(block-in-morsel): thread-per-task mode owns the thread; blocking push is its backpressure
      ch->events.Push(std::move(event));
      return;
    }
    if (target.overflow.empty() && ch->events.TryPush(std::move(event))) {
      return;
    }
    if (ch->events.closed()) return;  // dropped, like Push on a closed channel
    target.overflow.push_back(std::move(event));
    overflow_pending_ = true;
  }

  /// Re-offers stashed overflow events, oldest first. Returns true when
  /// every target's overflow is empty (the task may consume input again).
  bool FlushOverflow() {
    bool all_empty = true;
    for (OutputEdge& edge : outputs) {
      for (OutputTarget& target : edge.targets) {
        std::deque<StreamEvent>& q = target.overflow;
        while (!q.empty()) {
          if (target.channel->events.closed()) {
            q.clear();  // dropped, like Push on a closed channel
            break;
          }
          if (!target.channel->events.TryPush(std::move(q.front()))) break;
          q.pop_front();
        }
        if (!q.empty()) all_empty = false;
      }
    }
    overflow_pending_ = !all_empty;
    return all_empty;
  }

  void FlushTarget(OutputTarget* target) {
    if (target->buffer.empty()) return;
    FlushRouteMetrics();
    InputChannel* ch = target->channel;
    StreamEvent event = StreamEvent::OfBatch(std::move(target->buffer));
    // Next buffer: prefer one the consumer recycled (steady state ships
    // batches without touching the allocator).
    target->buffer = std::vector<Record>();
    ch->recycle.TryPop(&target->buffer);
    if (target->buffer.capacity() < batch_size) {
      target->buffer.reserve(batch_size);
    }
    PushEvent(*target, std::move(event));
  }

  void FlushAllBuffers() {
    for (OutputEdge& edge : outputs) {
      for (OutputTarget& target : edge.targets) FlushTarget(&target);
    }
  }

  void FlushRouteMetrics() {
    if (pending_records_out_ != 0) {
      records_out_->Increment(pending_records_out_);
      pending_records_out_ = 0;
    }
    if (pending_bytes_out_ != 0) {
      bytes_out_->Increment(pending_bytes_out_);
      pending_bytes_out_ = 0;
    }
  }

  void Broadcast(const StreamEvent& event) {
    // Control events (watermarks, barriers, EOS) must not overtake the
    // records emitted before them.
    FlushAllBuffers();
    FlushRouteMetrics();
    for (OutputEdge& edge : outputs) {
      for (OutputTarget& target : edge.targets) {
        StreamEvent copy = event;
        PushEvent(target, std::move(copy));
      }
    }
  }

  Job* job_;
  std::vector<int> node_ids_;
  int subtask_;
  int parallelism_;

  std::unique_ptr<RouterCollector> router_;
  std::vector<std::unique_ptr<ChainCollector>> collectors_;

  std::vector<Timestamp> channel_wm_;
  std::vector<bool> channel_open_;
  std::vector<bool> channel_aligned_;
  int open_channels_ = 0;
  Timestamp task_wm_ = kMinTimestamp;
  // First failure of this task (user-code error Status, injected fault, or
  // caught exception). Task thread only; reported to the Job once, at the
  // end of Run().
  Status task_status_;
  bool aligning_ = false;
  uint64_t barrier_id_ = 0;
  // Checkpoint the current delta chain is parented on: the restore point
  // at startup, then the last checkpoint this task fully persisted.
  // Incremental mode only; untouched (0) otherwise.
  uint64_t chain_parent_cp_ = 0;
  std::atomic<uint64_t> pending_barrier_{0};

  // Scheduler-mode push notifications: marks this task runnable on the
  // pool. Wake() is called by producers from arbitrary workers.
  class NotifyWaker : public Waker {
   public:
    void Wake() override { pool->Notify(task); }
    WorkStealingPool* pool = nullptr;
    Schedulable* task = nullptr;
  };

  // Morsel-mode lifecycle: kPhaseRunning covers the normal body, a failure
  // switches to kPhaseAborting (EOS sent, draining inputs), kPhaseDone
  // tasks refuse further morsels. Atomic only because the idle-source
  // timer reads done() from the timer thread; transitions happen on the
  // task's (serialized) morsels.
  static constexpr uint8_t kPhaseRunning = 0;
  static constexpr uint8_t kPhaseAborting = 1;
  static constexpr uint8_t kPhaseDone = 2;
  std::atomic<uint8_t> phase_{kPhaseRunning};
  // Total Step() invocations; stall-dump diagnostics only.
  std::atomic<uint64_t> debug_steps_{0};
  bool scheduler_mode_ = false;
  // True while any OutputTarget::overflow is non-empty; the task's morsel
  // loop stops consuming input until FlushOverflow drains everything
  // (task-serialized, like all non-atomic task state).
  bool overflow_pending_ = false;
  // Consecutive morsels whose flush failed; past the threshold each failed
  // respin yields the core to whoever should be draining (task-serialized).
  static constexpr uint32_t kFlushRetryYieldThreshold = 16;
  uint32_t flush_retry_streak_ = 0;
  // The finish epilogue ran but overflow was still pending: the next
  // morsel whose flush succeeds marks the task done.
  bool finishing_ = false;
  NotifyWaker notify_waker_;

  // Batch-at-a-time execution (see Init). source_batch_ accumulates source
  // emits; its capacity survives every flush (task thread only).
  bool batch_path_ = false;
  std::vector<Record> source_batch_;

  // Batched metric state (task thread only; see RouteRecord).
  uint64_t pending_records_out_ = 0;
  uint64_t pending_bytes_out_ = 0;
  uint64_t route_count_ = 0;

  Counter* records_in_ = nullptr;
  Counter* records_out_ = nullptr;
  Counter* bytes_out_ = nullptr;
  Gauge* watermark_gauge_ = nullptr;
};

}  // namespace internal

// ---------------------------------------------------------------------------
// Job

Job::~Job() {
  if (started_.load() && !finished_.load()) {
    Cancel();
    AwaitCompletion().IgnoreError(
        "destructor teardown after Cancel; any failure was already "
        "observable via Run()/FirstFailure()");
  }
}

Result<std::unique_ptr<Job>> Job::Create(const LogicalGraph& graph,
                                         JobOptions options) {
  STREAMLINE_RETURN_IF_ERROR(ValidateGraph(graph));
  auto job = std::unique_ptr<Job>(new Job());
  job->options_ = options;

  // 1) Operator chaining: group forward-connected nodes into tasks.
  const std::vector<int> topo = graph.TopologicalOrder();
  std::vector<int> chain_head(graph.nodes().size());
  for (size_t i = 0; i < chain_head.size(); ++i) {
    chain_head[i] = static_cast<int>(i);
  }
  if (options.enable_chaining) {
    for (int id : topo) {
      const auto in_edges = graph.InEdges(id);
      if (in_edges.size() != 1) continue;
      const GraphEdge* e = in_edges[0];
      if (e->scheme != PartitionScheme::kForward) continue;
      if (e->input_ordinal != 0) continue;
      if (graph.OutEdges(e->from).size() != 1) continue;
      chain_head[id] = chain_head[e->from];
    }
  }
  // Group members in topological order.
  // lint:allow(unordered-map-hot-path): plan construction, once per job
  std::unordered_map<int, std::vector<int>> groups;
  std::vector<int> group_order;
  for (int id : topo) {
    auto [it, inserted] = groups.try_emplace(chain_head[id]);
    if (inserted) group_order.push_back(chain_head[id]);
    it->second.push_back(id);
  }

  // 2) Instantiate tasks.
  // task_index[head][subtask] -> index into job->tasks_.
  // lint:allow(unordered-map-hot-path): plan construction, once per job
  std::unordered_map<int, std::vector<size_t>> task_index;
  for (int head : group_order) {
    const std::vector<int>& members = groups[head];
    const GraphNode& head_node = graph.node(head);
    std::string base_name = head_node.name;
    for (size_t i = 1; i < members.size(); ++i) {
      base_name += "->" + graph.node(members[i]).name;
    }
    for (int s = 0; s < head_node.parallelism; ++s) {
      auto task = std::make_unique<internal::Task>(job.get(), members, s,
                                                   head_node.parallelism);
      task->base_name = base_name;
      task->task_name = base_name + "#" + std::to_string(s);
      task->is_source = head_node.is_source;
      if (head_node.is_source) {
        task->source = head_node.source_factory(s, head_node.parallelism);
      } else {
        task->ops.push_back(head_node.op_factory());
      }
      for (size_t i = 1; i < members.size(); ++i) {
        task->ops.push_back(graph.node(members[i]).op_factory());
      }
      task->batch_size = std::max<size_t>(options.batch_size, 1);
      task->idle_spin_budget = options.idle_spin_budget;
      task->injector = options.fault_injector.get();
      task->sites.push_back(
          (head_node.is_source ? "source:" : "op:") + head_node.name);
      for (size_t i = 1; i < members.size(); ++i) {
        task->sites.push_back("op:" + graph.node(members[i]).name);
      }
      task_index[head].push_back(job->tasks_.size());
      job->tasks_.push_back(std::move(task));
    }
  }

  // 3) Wire channels for every inter-group edge.
  for (const GraphEdge& e : graph.edges()) {
    if (chain_head[e.from] == chain_head[e.to]) continue;  // fused
    const int up_head = chain_head[e.from];
    const int down_head = chain_head[e.to];
    // The edge must leave the tail of the upstream group and enter the head
    // of the downstream group.
    STREAMLINE_CHECK_EQ(groups[up_head].back(), e.from)
        << "edge leaves the middle of a chain";
    STREAMLINE_CHECK_EQ(down_head, e.to) << "edge enters a chained operator";
    const auto& up_tasks = task_index[up_head];
    const auto& down_tasks = task_index[down_head];
    // Allocate one input channel per (upstream subtask, downstream subtask).
    // channel_of[s][t] is the downstream task t's channel index fed by
    // upstream subtask s.
    std::vector<std::vector<int>> channel_of(
        up_tasks.size(), std::vector<int>(down_tasks.size(), -1));
    for (size_t s = 0; s < up_tasks.size(); ++s) {
      for (size_t t = 0; t < down_tasks.size(); ++t) {
        internal::Task* down = job->tasks_[down_tasks[t]].get();
        channel_of[s][t] = down->num_inputs++;
        down->channel_ordinal.push_back(e.input_ordinal);
        // Dedicated SPSC channel: upstream subtask s is its only producer,
        // downstream task t its only consumer.
        down->inputs.push_back(std::make_unique<internal::InputChannel>(
            options.channel_capacity, &down->doorbell));
      }
    }
    for (size_t s = 0; s < up_tasks.size(); ++s) {
      internal::Task* up = job->tasks_[up_tasks[s]].get();
      internal::OutputEdge out;
      out.scheme = e.scheme;
      out.key = e.key;
      out.key_field = e.key_field;
      out.key_hash = e.key_hash;
      for (size_t t = 0; t < down_tasks.size(); ++t) {
        internal::Task* down = job->tasks_[down_tasks[t]].get();
        internal::OutputTarget target;
        target.channel = down->inputs[channel_of[s][t]].get();
        out.targets.push_back(std::move(target));
      }
      up->outputs.push_back(std::move(out));
    }
  }

  // 4) Open operators, set up metrics and runtime state.
  for (auto& task : job->tasks_) {
    STREAMLINE_RETURN_IF_ERROR(task->Init());
  }

  // 5) Checkpointing infrastructure.
  const bool wants_checkpoints = options.snapshot_store != nullptr ||
                                 options.checkpoint_interval_ms > 0 ||
                                 options.restore_from_checkpoint != 0;
  if (options.incremental_checkpoints && !wants_checkpoints) {
    return Status::InvalidArgument(
        "incremental_checkpoints requires a snapshot store "
        "(set JobOptions::snapshot_store to an IncrementalSnapshotStore)");
  }
  if (wants_checkpoints) {
    job->snapshot_store_ = options.snapshot_store
                               ? options.snapshot_store
                               : std::make_shared<SnapshotStore>();
    if (options.incremental_checkpoints) {
      auto* inc =
          dynamic_cast<IncrementalSnapshotStore*>(job->snapshot_store_.get());
      if (inc == nullptr) {
        return Status::InvalidArgument(
            "incremental_checkpoints requires JobOptions::snapshot_store to "
            "be an IncrementalSnapshotStore");
      }
      inc->SetCompactionThreshold(options.changelog_compaction_bytes);
      inc->SetFaultInjector(options.fault_injector.get());
      for (auto& task : job->tasks_) task->inc_store = inc;
    }
    // Checkpoint ids continue after anything already in the store, so a
    // restarted job never collides with its predecessor's checkpoints.
    job->coordinator_ = std::make_unique<CheckpointCoordinator>(
        job->snapshot_store_.get(), static_cast<int>(job->tasks_.size()),
        job->snapshot_store_->MaxCheckpointId() + 1);
    const bool scheduled =
        options.execution_mode == JobOptions::ExecutionMode::kScheduler;
    Job* j = job.get();
    for (auto& task : job->tasks_) {
      if (task->is_source) {
        internal::Task* t = task.get();
        job->coordinator_->RegisterSourceTrigger(
            [t, j, scheduled](uint64_t id) {
              t->RequestBarrier(id);
              // Scheduler mode: an idle source won't poll on its own, so
              // nudge it -- barrier latency becomes one morsel instead of
              // waiting for the 1 ms re-poll timer.
              if (scheduled && j->started_.load()) j->pool_->Notify(t);
            });
      }
    }
  }

  // 6) Restore.
  if (options.restore_from_checkpoint != 0) {
    for (auto& task : job->tasks_) {
      STREAMLINE_RETURN_IF_ERROR(task->RestoreFrom(
          job->snapshot_store_.get(), options.restore_from_checkpoint));
    }
  }
  // Changelogs switch on only after restore: replaying a snapshot must
  // never record delta events of its own.
  if (options.incremental_checkpoints) {
    for (auto& task : job->tasks_) {
      for (auto& op : task->ops) {
        if (op->SupportsIncrementalState()) op->EnableIncrementalState();
      }
    }
  }

  // 7) The scheduler. In thread-per-task mode the pool is timer-only: no
  // workers, but the checkpoint cadence still runs on its timer thread.
  {
    WorkStealingPool::Options popts;
    if (options.execution_mode == JobOptions::ExecutionMode::kScheduler) {
      popts.num_workers = options.worker_threads;  // 0 = hardware
    } else {
      popts.timer_only = true;
    }
    job->pool_ = std::make_unique<WorkStealingPool>(std::move(popts));
    if (options.execution_mode == JobOptions::ExecutionMode::kScheduler) {
      for (auto& task : job->tasks_) {
        task->AttachScheduler(job->pool_.get());
      }
    }
  }
  return job;
}

Status Job::Start() {
  if (started_.exchange(true)) {
    return Status::FailedPrecondition("job already started");
  }
  start_time_ = std::chrono::steady_clock::now();
  if (options_.execution_mode == JobOptions::ExecutionMode::kScheduler) {
    {
      MutexLock lock(&done_mu_);
      live_tasks_ = tasks_.size();
    }
    // Every task gets an initial morsel; operator tasks find their
    // channels empty and go idle until a producer pushes.
    for (auto& task : tasks_) {
      pool_->Notify(task.get());
    }
    // Idle sources are re-polled on a timer: external input (logs, gates)
    // can arrive without any channel push to notify them, pending
    // checkpoint barriers must be serviced while no records flow, and
    // cancellation must reach a quiet source.
    source_poll_timer_id_ = pool_->ScheduleRepeating(1, [this] {
      if (finished_.load()) return;
      for (auto& task : tasks_) {
        if (task->is_source && !task->done()) pool_->Notify(task.get());
      }
    });
  } else {
    threads_.reserve(tasks_.size());
    for (auto& task : tasks_) {
      threads_.emplace_back([t = task.get()] { t->Run(); });
    }
  }
  if (options_.checkpoint_interval_ms > 0) {
    last_cp_time_ = start_time_;
    checkpoint_timer_id_ = pool_->ScheduleRepeating(
        options_.checkpoint_interval_ms, [this] { CheckpointTick(); });
  }
  return Status::Ok();
}

void Job::CheckpointTick() {
  if (finished_.load() || cancelled_.load()) return;
  if (coordinator_ == nullptr) return;
  const auto now = std::chrono::steady_clock::now();
  if (last_cp_id_ != 0 && !coordinator_->IsComplete(last_cp_id_)) {
    // In-flight checkpoint: hold the cadence rather than overlap barriers
    // (tasks CHECK against overlap). Bounded, though: a checkpoint that
    // can never complete -- triggered as a bounded source finished -- must
    // not stall the cadence forever. 2 s matches the bounded wait the old
    // dedicated timer thread used.
    if (now - last_cp_time_ < std::chrono::seconds(2)) return;
  }
  last_cp_id_ = coordinator_->Trigger();
  last_cp_time_ = now;
}

void Job::TaskFinished() {
  MutexLock lock(&done_mu_);
  if (live_tasks_ > 0) --live_tasks_;
  if (live_tasks_ == 0) done_cv_.NotifyAll();
}

Status Job::AwaitCompletion() {
  if (!started_.load()) {
    return Status::FailedPrecondition("job not started");
  }
  if (options_.execution_mode == JobOptions::ExecutionMode::kScheduler) {
    // Optional stall diagnostics: with STREAMLINE_STALL_DUMP_SECS=N set,
    // a job whose live-task count stops moving for N seconds dumps every
    // task's scheduling state to stderr (and keeps dumping every N
    // seconds). Reads are racy -- this is a debugging aid, not a metric.
    int64_t dump_secs = 0;
    // Nothing in the engine calls setenv, so this lone read cannot race.
    // NOLINTNEXTLINE(concurrency-mt-unsafe)
    if (const char* env = std::getenv("STREAMLINE_STALL_DUMP_SECS")) {
      dump_secs = std::atoll(env);
    }
    MutexLock lock(&done_mu_);
    size_t last_seen = live_tasks_;
    auto last_change = std::chrono::steady_clock::now();
    while (live_tasks_ > 0) {
      // Timed backstop, same philosophy as Doorbell: a (theoretical) lost
      // wakeup costs one period, not a hang.
      done_cv_.WaitFor(&done_mu_, std::chrono::milliseconds(10));
      if (dump_secs <= 0) continue;
      const auto now = std::chrono::steady_clock::now();
      if (live_tasks_ != last_seen) {
        last_seen = live_tasks_;
        last_change = now;
      } else if (now - last_change >= std::chrono::seconds(dump_secs)) {
        last_change = now;
        std::string dump = "=== streamline stall dump: live_tasks=" +
                           std::to_string(live_tasks_) + "\n";
        for (const auto& task : tasks_) {
          char ptr[32];
          std::snprintf(ptr, sizeof(ptr), "%p",
                        static_cast<void*>(
                            static_cast<Schedulable*>(task.get())));
          dump += "  " + std::string(ptr) + " " + task->DebugString() + "\n";
        }
        dump += "  queues: " + pool_->DebugQueues() + "\n";
        const SchedulerCounters& c = pool_->counters();
        dump += "  pool: ready=" + std::to_string(pool_->ApproxReadyDepth()) +
                " morsels=" + std::to_string(c.morsels_local.load()) +
                " notifies=" + std::to_string(c.notifies.load()) +
                " parks=" + std::to_string(c.parks.load()) +
                " wakeups=" + std::to_string(c.wakeups.load()) + " busy_us=[";
        for (size_t i = 0; i < pool_->num_workers(); ++i) {
          if (i > 0) dump += " ";
          dump += std::to_string(pool_->WorkerBusyMicros(i));
        }
        dump += "]\n";
        std::fputs(dump.c_str(), stderr);
      }
    }
  } else {
    // lint:allow(raw-thread): joining thread-per-task mode's task threads
    for (std::thread& t : threads_) {
      if (t.joinable()) t.join();
    }
  }
  finished_.store(true);
  if (checkpoint_timer_id_ != 0) {
    pool_->CancelTimer(checkpoint_timer_id_);
    checkpoint_timer_id_ = 0;
  }
  if (source_poll_timer_id_ != 0) {
    pool_->CancelTimer(source_poll_timer_id_);
    source_poll_timer_id_ = 0;
  }
  ExportSchedulerMetrics();
  // Joins the workers and the timer thread; queued morsels of finished
  // tasks (stale hints) are dropped.
  pool_->Shutdown();
  return FirstFailure();
}

void Job::ExportSchedulerMetrics() {
  if (pool_ == nullptr || pool_->num_workers() == 0) return;
  const SchedulerCounters& c = pool_->counters();
  auto set = [this](const std::string& name, double v) {
    metrics_.GetGauge("scheduler." + name)->Set(v);
  };
  const auto rel = std::memory_order_relaxed;
  set("workers", static_cast<double>(pool_->num_workers()));
  set("morsels_local", static_cast<double>(c.morsels_local.load(rel)));
  set("morsels_stolen", static_cast<double>(c.morsels_stolen.load(rel)));
  set("morsels_injected", static_cast<double>(c.morsels_injected.load(rel)));
  set("morsels_inline", static_cast<double>(c.morsels_inline.load(rel)));
  set("steals", static_cast<double>(c.steals.load(rel)));
  set("parks", static_cast<double>(c.parks.load(rel)));
  set("wakeups", static_cast<double>(c.wakeups.load(rel)));
  set("notifies", static_cast<double>(c.notifies.load(rel)));
  set("ready_depth", static_cast<double>(pool_->ApproxReadyDepth()));
  const auto wall = std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - start_time_);
  set("wall_micros", static_cast<double>(wall.count()));
  for (size_t i = 0; i < pool_->num_workers(); ++i) {
    set("worker" + std::to_string(i) + ".busy_micros",
        static_cast<double>(pool_->WorkerBusyMicros(i)));
  }
}

Status Job::FirstFailure() const {
  MutexLock lock(&failure_mu_);
  return first_failure_;
}

void Job::ReportTaskFailure(const std::string& task_name,
                            const Status& status) {
  {
    MutexLock lock(&failure_mu_);
    if (first_failure_.ok()) {
      first_failure_ = Status(status.code(), "task '" + task_name +
                                                 "' failed: " +
                                                 status.message());
    }
  }
  LOG_ERROR << "task " << task_name << " failed: " << status.ToString();
  // Cancelling stops the sources; every other task sees end-of-stream (or
  // the failing task's abort EOS) and winds down.
  cancelled_.store(true);
}

Status Job::Run() {
  STREAMLINE_RETURN_IF_ERROR(Start());
  return AwaitCompletion();
}

void Job::Cancel() { cancelled_.store(true); }

uint64_t Job::TriggerCheckpoint() {
  STREAMLINE_CHECK(coordinator_ != nullptr)
      << "job has no snapshot store (set JobOptions::snapshot_store)";
  return coordinator_->Trigger();
}

bool Job::AwaitCheckpoint(uint64_t id, double timeout_seconds) {
  STREAMLINE_CHECK(coordinator_ != nullptr);
  return coordinator_->AwaitCompletion(id, timeout_seconds);
}

uint64_t Job::LatestCompletedCheckpoint() const {
  return coordinator_ == nullptr ? 0 : coordinator_->latest_completed();
}

size_t Job::num_tasks() const { return tasks_.size(); }

std::string Job::PlanDescription() const {
  std::ostringstream os;
  for (const auto& task : tasks_) {
    if (task->subtask() != 0) continue;
    os << task->base_name << " x" << task->parallelism() << " (nodes:";
    for (int id : task->node_ids()) os << " " << id;
    os << ")\n";
  }
  return os.str();
}

}  // namespace streamline
