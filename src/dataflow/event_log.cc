#include "dataflow/event_log.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"

namespace streamline {

EventLog::EventLog(int num_partitions) {
  STREAMLINE_CHECK_GT(num_partitions, 0);
  partitions_.resize(num_partitions);
}

uint64_t EventLog::Append(int partition, Record record) {
  MutexLock lock(&mu_);
  STREAMLINE_CHECK(!closed_) << "append to closed log";
  STREAMLINE_CHECK_GE(partition, 0);
  STREAMLINE_CHECK_LT(partition, static_cast<int>(partitions_.size()));
  auto& records = partitions_[partition].records;
  STREAMLINE_DCHECK(records.empty() ||
                    records.back().timestamp <= record.timestamp)
      << "per-partition appends must be timestamp-ordered";
  records.push_back(std::move(record));
  return records.size() - 1;
}

uint64_t EventLog::AppendByKey(size_t key_field, Record record) {
  const int partition = static_cast<int>(record.field(key_field).Hash() %
                                         partitions_.size());
  return Append(partition, std::move(record));
}

uint64_t EventLog::EndOffset(int partition) const {
  MutexLock lock(&mu_);
  return partitions_[partition].records.size();
}

Result<Record> EventLog::Read(int partition, uint64_t offset) const {
  MutexLock lock(&mu_);
  const auto& records = partitions_[partition].records;
  if (offset >= records.size()) {
    return Status::NotFound("offset " + std::to_string(offset) +
                            " past end of partition " +
                            std::to_string(partition));
  }
  return records[offset];
}

void EventLog::Close() {
  MutexLock lock(&mu_);
  closed_ = true;
}

bool EventLog::closed() const {
  MutexLock lock(&mu_);
  return closed_;
}

// ---------------------------------------------------------------------------
// LogSource

LogSource::LogSource(std::shared_ptr<EventLog> log, int subtask,
                     int parallelism, uint64_t watermark_every)
    : log_(std::move(log)), subtask_(subtask), parallelism_(parallelism),
      watermark_every_(watermark_every) {
  for (int p = subtask_; p < log_->num_partitions(); p += parallelism_) {
    my_partitions_.push_back(p);
  }
  offsets_.assign(my_partitions_.size(), 0);
  last_ts_.assign(my_partitions_.size(), kMinTimestamp);
}

Result<SourcePoll> LogSource::Poll(SourceContext* ctx) {
  if (my_partitions_.empty()) return SourcePoll::kExhausted;
  // Pick the owned partition with the smallest available head timestamp
  // (best-effort cross-partition ordering) and emit one record per poll.
  int best = -1;
  Timestamp best_ts = kMaxTimestamp;
  bool all_exhausted = true;
  for (size_t i = 0; i < my_partitions_.size(); ++i) {
    const int p = my_partitions_[i];
    if (offsets_[i] < log_->EndOffset(p)) {
      all_exhausted = false;
      auto head = log_->Read(p, offsets_[i]);
      STREAMLINE_CHECK(head.ok());
      if (head->timestamp < best_ts) {
        best_ts = head->timestamp;
        best = static_cast<int>(i);
      }
    } else if (!log_->closed()) {
      all_exhausted = false;
    }
  }
  if (best == -1) {
    if (all_exhausted && log_->closed()) return SourcePoll::kExhausted;
    // Open log with no data available yet: the runtime re-polls after a
    // short delay (and keeps servicing checkpoint barriers while idle).
    return SourcePoll::kIdle;
  }
  auto record = log_->Read(my_partitions_[best], offsets_[best]);
  STREAMLINE_CHECK(record.ok());
  last_ts_[best] = record->timestamp;
  if (!ctx->Emit(std::move(*record))) return SourcePoll::kExhausted;
  ++offsets_[best];
  ++emitted_;
  if (watermark_every_ > 0 && emitted_ % watermark_every_ == 0) {
    // Conservative per-partition watermark: future records of partition
    // i have ts >= last_ts_[i] (appends are ordered), so the subtask
    // watermark is the minimum over its non-exhausted partitions.
    Timestamp wm = kMaxTimestamp;
    for (size_t i = 0; i < my_partitions_.size(); ++i) {
      const bool exhausted =
          log_->closed() &&
          offsets_[i] >= log_->EndOffset(my_partitions_[i]);
      if (!exhausted) wm = std::min(wm, last_ts_[i]);
    }
    if (wm != kMaxTimestamp && wm != kMinTimestamp) {
      ctx->EmitWatermark(wm);
    }
  }
  return SourcePoll::kHasMore;
}

Status LogSource::SnapshotState(BinaryWriter* w) const {
  w->WriteU64(offsets_.size());
  for (uint64_t off : offsets_) w->WriteU64(off);
  return Status::Ok();
}

Status LogSource::RestoreState(BinaryReader* r) {
  auto n = r->ReadU64();
  if (!n.ok()) return n.status();
  if (*n != offsets_.size()) {
    return Status::FailedPrecondition("partition assignment mismatch");
  }
  for (size_t i = 0; i < offsets_.size(); ++i) {
    auto off = r->ReadU64();
    if (!off.ok()) return off.status();
    offsets_[i] = *off;
  }
  return Status::Ok();
}

std::string LogSource::Name() const {
  return "log-source[" + std::to_string(subtask_) + "/" +
         std::to_string(parallelism_) + "]";
}

SourceFactory LogSource::Factory(std::shared_ptr<EventLog> log,
                                 uint64_t watermark_every) {
  return [log, watermark_every](
             int subtask, int parallelism) -> std::unique_ptr<SourceFunction> {
    return std::make_unique<LogSource>(log, subtask, parallelism,
                                       watermark_every);
  };
}

}  // namespace streamline
