#ifndef STREAMLINE_TOOLS_ANALYZER_CLANG_FRONTEND_H_
#define STREAMLINE_TOOLS_ANALYZER_CLANG_FRONTEND_H_

// Optional Clang libTooling frontend, compiled only when the build is
// configured with -DSTREAMLINE_ANALYZER_WITH_CLANG=ON (requires the
// LLVM/Clang development packages). It populates the same Program model as
// the structural frontend in parse.cc, but from real ASTs: overload
// resolution, template desugaring, and implicit copy constructions are
// exact instead of token-shape approximations.

#include <string>
#include <vector>

#include "model.h"

namespace streamline::analyzer {

/// Parses every translation unit listed in `compdb` (a
/// compile_commands.json) that lives under one of `src_dirs`, merging the
/// extracted facts into `prog`. Waiver comments are NOT collected here --
/// the caller keeps using CollectWaivers, so waiver semantics are identical
/// across frontends. Returns false and fills `error` on tooling failure.
bool ParseWithClang(const std::string& compdb,
                    const std::vector<std::string>& src_dirs, Program* prog,
                    std::string* error);

}  // namespace streamline::analyzer

#endif  // STREAMLINE_TOOLS_ANALYZER_CLANG_FRONTEND_H_
