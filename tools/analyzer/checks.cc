#include "checks.h"

#include <algorithm>
#include <cctype>
#include <deque>
#include <functional>
#include <sstream>

namespace streamline::analyzer {

namespace {

bool StartsWith(const std::string& s, const std::string& p) {
  return s.size() >= p.size() && s.compare(0, p.size(), p) == 0;
}
bool EndsWith(const std::string& s, const std::string& p) {
  return s.size() >= p.size() &&
         s.compare(s.size() - p.size(), p.size(), p) == 0;
}
bool Contains(const std::string& s, const std::string& p) {
  return s.find(p) != std::string::npos;
}

/// The network edge owns socket discipline: every fd there is
/// non-blocking by construction (socket.cc), so socket syscalls under a
/// net/ directory are sanctioned. Matches src/net/ in the real tree and
/// net/ subtrees in fixture corpora; paths may be repo-relative or
/// absolute depending on the frontend.
bool IsNetEdgeFile(const SourceLoc& loc) {
  return Contains(loc.file, "/net/") || StartsWith(loc.file, "net/");
}

/// True when the call passes the MSG_DONTWAIT flag as a plain argument --
/// the per-call non-blocking form of send/recv.
bool HasDontWaitFlag(const CallSite& cs) {
  for (const CallSite::Arg& a : cs.args) {
    if (a.lvalue_head == "MSG_DONTWAIT") return true;
  }
  return false;
}

/// Blocking primitive classification on an *unresolved* call site:
/// OS / std facilities the program model has no body for.
bool IsIntrinsicBlocking(const CallSite& cs, std::string* display) {
  if (Contains(cs.qualifier, "this_thread") &&
      (cs.name == "sleep_for" || cs.name == "sleep_until")) {
    *display = "std::this_thread::" + cs.name;
    return true;
  }
  if (cs.qualifier.empty() && cs.receiver_chain.empty()) {
    static const char* kBlocking[] = {"sleep",     "usleep", "nanosleep",
                                      "fsync",     "fdatasync", "syncfs",
                                      "sem_wait",  "poll",   "select",
                                      "epoll_wait"};
    for (const char* b : kBlocking) {
      if (cs.name == b) {
        *display = cs.name;
        return true;
      }
    }
    // Socket syscalls park the thread on kernel buffers / the peer unless
    // the fd is non-blocking. The per-call MSG_DONTWAIT form is fine
    // anywhere; fd-level O_NONBLOCK is confined to src/net/, which is
    // sanctioned wholesale (see IsNetEdgeFile).
    static const char* kBlockingSock[] = {"send",    "recv",    "sendto",
                                          "recvfrom", "sendmsg", "recvmsg",
                                          "accept",  "accept4", "connect"};
    for (const char* b : kBlockingSock) {
      if (cs.name == b) {
        if (IsNetEdgeFile(cs.loc) || HasDontWaitFlag(cs)) return false;
        *display = cs.name + "(2)";
        return true;
      }
    }
  }
  return false;
}

/// Nondeterminism classification (wall clock, PRNG seeding from entropy).
bool IsIntrinsicNondet(const CallSite& cs, std::string* display) {
  if (Contains(cs.qualifier, "system_clock") && cs.name == "now") {
    *display = "std::chrono::system_clock::now";
    return true;
  }
  if (cs.qualifier.empty() || cs.qualifier == "std") {
    static const char* kNondet[] = {"rand", "srand", "time", "localtime",
                                    "gmtime", "clock", "gettimeofday"};
    if (cs.receiver_chain.empty()) {
      for (const char* b : kNondet) {
        if (cs.name == b) {
          *display = cs.name;
          return true;
        }
      }
    }
  }
  return false;
}

/// Resolved callees that *are* blocking sinks: their bodies park the thread.
bool IsBlockingSink(const std::string& qualified) {
  if (StartsWith(qualified, "CondVar::Wait")) return true;
  if (qualified == "Doorbell::Park") return true;
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Resolver
// ---------------------------------------------------------------------------

Resolver::Resolver(const Program& prog) : prog_(prog) {
  for (const auto& [qn, fn] : prog_.functions) {
    by_bare_name_[fn.bare_name].push_back(qn);
  }
}

std::string Resolver::ResolveAlias(const std::string& name) const {
  for (const auto& [_, cls] : prog_.classes) {
    auto it = cls.aliases.find(name);
    if (it != cls.aliases.end()) return it->second;
  }
  return name;
}

std::string Resolver::FindFieldOwner(const std::string& cls,
                                     const std::string& field) const {
  std::set<std::string> seen;
  std::vector<std::string> work = {cls};
  while (!work.empty()) {
    std::string c = work.back();
    work.pop_back();
    if (c.empty() || !seen.insert(c).second) continue;
    auto it = prog_.classes.find(c);
    if (it == prog_.classes.end()) continue;
    if (it->second.member_types.count(field)) return c;
    for (const auto& b : it->second.bases) work.push_back(b);
  }
  return "";
}

std::string Resolver::LockId(const FunctionInfo& fn,
                             const std::vector<std::string>& chain) const {
  if (chain.empty()) return "";
  const std::string& field = chain.back();
  if (EndsWith(field, "()")) return "fn:" + field;  // MutexLock l(GlobalMu())
  if (chain.size() == 1) {
    if (fn.local_types.count(field)) {
      return fn.qualified_name + "/" + field;
    }
    const std::string owner = FindFieldOwner(fn.class_name, field);
    return owner.empty() ? "field:" + field : owner + "::" + field;
  }
  std::vector<std::string> prefix(chain.begin(), chain.end() - 1);
  const std::string cls = ChainClass(fn, prefix);
  if (!cls.empty()) {
    const std::string owner = FindFieldOwner(cls, field);
    if (!owner.empty()) return owner + "::" + field;
  }
  return "field:" + field;
}

void ResolveLockIds(Program* prog) {
  Resolver resolver(*prog);
  for (auto& [qn, fn] : prog->functions) {
    for (auto& l : fn.locks) {
      l.lock_id = resolver.LockId(fn, l.chain);
    }
    for (auto& l : fn.locks) {
      l.held_locks.clear();
      for (int h : l.held_idx) {
        if (h >= 0 && h < static_cast<int>(fn.locks.size())) {
          l.held_locks.push_back(fn.locks[h].lock_id);
        }
      }
    }
    for (auto& cs : fn.calls) {
      cs.held_locks.clear();
      for (int h : cs.held_idx) {
        if (h >= 0 && h < static_cast<int>(fn.locks.size())) {
          cs.held_locks.push_back(fn.locks[h].lock_id);
        }
      }
    }
  }
}

std::string Resolver::FieldTypeIn(const std::string& cls,
                                  const std::string& field) const {
  std::set<std::string> seen;
  std::vector<std::string> work = {cls};
  while (!work.empty()) {
    std::string c = work.back();
    work.pop_back();
    if (c.empty() || !seen.insert(c).second) continue;
    auto it = prog_.classes.find(c);
    if (it == prog_.classes.end()) continue;
    auto f = it->second.member_types.find(field);
    if (f != it->second.member_types.end()) return f->second;
    for (const auto& b : it->second.bases) work.push_back(b);
  }
  return "";
}

std::string Resolver::ChainClass(const FunctionInfo& caller,
                                 const std::vector<std::string>& chain) const {
  std::string cur;
  for (size_t k = 0; k < chain.size(); ++k) {
    std::string elem = chain[k];
    if (EndsWith(elem, "()")) return "";  // method-call element: return type
                                          // unknown -> fall back by name
    std::string next;
    if (k == 0) {
      if (elem == "this") {
        cur = caller.class_name;
        continue;
      }
      auto it = caller.local_types.find(elem);
      next = it != caller.local_types.end()
                 ? it->second
                 : FieldTypeIn(caller.class_name, elem);
      if (next.empty()) {
        // Range-for variable: type is the container's element type (the
        // container's recorded type is already unwrapped to the element).
        auto ef = caller.local_elem_of.find(elem);
        if (ef != caller.local_elem_of.end()) {
          next = ChainClass(caller, ef->second);
        }
      }
    } else {
      next = FieldTypeIn(cur, elem);
    }
    if (next.empty()) return "";
    cur = ResolveAlias(next);
  }
  return cur;
}

std::vector<std::string> Resolver::MethodTargets(
    const std::string& cls, const std::string& name) const {
  // Declaring classes: cls and ancestors that define/declare `name`; then
  // virtual dispatch adds every subclass of a declaring class that defines
  // it.
  std::vector<std::string> out;
  std::set<std::string> out_set;
  auto add = [&](const std::string& qn) {
    if (prog_.functions.count(qn) && out_set.insert(qn).second) {
      out.push_back(qn);
    }
  };
  std::set<std::string> declaring;
  {
    std::set<std::string> seen;
    std::vector<std::string> work = {cls};
    while (!work.empty()) {
      std::string c = work.back();
      work.pop_back();
      if (c.empty() || !seen.insert(c).second) continue;
      auto it = prog_.classes.find(c);
      if (it == prog_.classes.end()) continue;
      if (it->second.method_names.count(name)) declaring.insert(c);
      for (const auto& b : it->second.bases) work.push_back(b);
    }
  }
  for (const auto& c : declaring) {
    add(c + "::" + name);
    auto subs = prog_.subclasses.find(c);
    if (subs != prog_.subclasses.end()) {
      for (const auto& s : subs->second) add(s + "::" + name);
    }
  }
  return out;
}

std::vector<std::string> Resolver::Targets(const FunctionInfo& caller,
                                           const CallSite& cs) const {
  if (cs.indirect) return {};
  // Explicitly qualified: Class::Method or a std:: call (intrinsic).
  if (!cs.qualifier.empty()) {
    if (StartsWith(cs.qualifier, "std") || Contains(cs.qualifier, "chrono")) {
      return {};
    }
    // Last qualifier component is the class.
    std::string cls = cs.qualifier;
    auto pos = cls.rfind("::");
    if (pos != std::string::npos) cls = cls.substr(pos + 2);
    auto direct = MethodTargets(cls, cs.name);
    if (!direct.empty()) return direct;
    if (prog_.functions.count(cls + "::" + cs.name)) {
      return {cls + "::" + cs.name};
    }
    return {};
  }
  if (!cs.receiver_chain.empty()) {
    const std::string cls = ChainClass(caller, cs.receiver_chain);
    if (!cls.empty() && prog_.classes.count(cls)) {
      auto targets = MethodTargets(cls, cs.name);
      if (!targets.empty()) return targets;
      return {};  // known class, unknown method: std type or accessor
    }
    // Unknown receiver type: conservative name-based fallback, but only
    // for project-style CamelCase names -- lowercase receivers are STL
    // containers (x.size(), x.push_back()) and matching them against
    // same-named project methods floods the graph with false edges.
    if (cs.name.empty() || !std::isupper(static_cast<unsigned char>(
                               cs.name[0]))) {
      return {};
    }
    auto it = by_bare_name_.find(cs.name);
    return it == by_bare_name_.end() ? std::vector<std::string>{}
                                     : it->second;
  }
  // Unqualified call: self-call if the caller's class hierarchy has the
  // method, else a free function, else name fallback.
  if (!caller.class_name.empty()) {
    auto self = MethodTargets(caller.class_name, cs.name);
    if (!self.empty()) return self;
  }
  if (prog_.functions.count(cs.name)) return {cs.name};
  // Unqualified helpers in anonymous namespaces parse as free functions,
  // so the lookup above covers them; anything else is macro/ctor noise.
  return {};
}

// ---------------------------------------------------------------------------
// Reachability engine
// ---------------------------------------------------------------------------

namespace {

struct PathStep {
  std::string fn;
  SourceLoc loc;
};

/// Multi-source BFS over the call graph; invokes `visit` once per reached
/// function with the shortest entry path (entry first).
void Reach(const Program& prog, const Resolver& resolver,
           const std::vector<std::string>& entries,
           const std::function<void(const FunctionInfo&,
                                    const std::vector<PathStep>&)>& visit) {
  struct Node {
    std::string fn;
    int parent;
    SourceLoc via;  // call site in parent that reaches fn
  };
  std::vector<Node> nodes;
  std::set<std::string> seen;
  std::deque<int> queue;
  for (const auto& e : entries) {
    if (!seen.insert(e).second) continue;
    auto it = prog.functions.find(e);
    if (it == prog.functions.end()) continue;
    nodes.push_back({e, -1, it->second.loc});
    queue.push_back(static_cast<int>(nodes.size()) - 1);
  }
  while (!queue.empty()) {
    const int idx = queue.front();
    queue.pop_front();
    const Node node = nodes[idx];
    auto it = prog.functions.find(node.fn);
    if (it == prog.functions.end()) continue;
    const FunctionInfo& fn = it->second;
    // Reconstruct path.
    std::vector<PathStep> path;
    for (int k = idx; k != -1; k = nodes[k].parent) {
      path.push_back({nodes[k].fn, nodes[k].via});
    }
    std::reverse(path.begin(), path.end());
    visit(fn, path);
    for (const CallSite& cs : fn.calls) {
      for (const std::string& target : resolver.Targets(fn, cs)) {
        if (IsBlockingSink(target)) continue;  // sinks handled by visit
        if (!seen.insert(target).second) continue;
        nodes.push_back({target, idx, cs.loc});
        queue.push_back(static_cast<int>(nodes.size()) - 1);
      }
    }
  }
}

std::vector<std::pair<std::string, SourceLoc>> ToDiagPath(
    const std::vector<PathStep>& path) {
  std::vector<std::pair<std::string, SourceLoc>> out;
  for (const auto& s : path) out.push_back({s.fn, s.loc});
  return out;
}

// ---------------------------------------------------------------------------
// Check: block-in-morsel
// ---------------------------------------------------------------------------

std::vector<std::string> MorselEntries(const Program& prog) {
  std::vector<std::string> entries;
  for (const auto& [qn, fn] : prog.functions) {
    if (fn.class_name.empty()) continue;
    if (fn.bare_name == "Step" &&
        prog.DerivesFrom(fn.class_name, "Schedulable")) {
      entries.push_back(qn);
    }
    if ((fn.bare_name == "ProcessBatch" || fn.bare_name == "ProcessRecord" ||
         fn.bare_name == "ProcessWatermark") &&
        (prog.DerivesFrom(fn.class_name, "Operator") || fn.is_override)) {
      entries.push_back(qn);
    }
  }
  return entries;
}

void CheckBlockInMorsel(const Program& prog, const Resolver& resolver,
                        const CheckOptions& opts,
                        std::vector<Diagnostic>* out) {
  const auto entries = MorselEntries(prog);
  std::map<SourceLoc, Diagnostic> by_site;  // dedup: one per blocking site
  Reach(prog, resolver, entries,
        [&](const FunctionInfo& fn, const std::vector<PathStep>& path) {
          if (opts.blocking_allowlist.count(fn.qualified_name)) return;
          for (const CallSite& cs : fn.calls) {
            std::string display;
            bool blocking = IsIntrinsicBlocking(cs, &display);
            if (!blocking) {
              for (const std::string& target : resolver.Targets(fn, cs)) {
                if (IsBlockingSink(target)) {
                  blocking = true;
                  display = target;
                  break;
                }
              }
            }
            if (!blocking) continue;
            if (by_site.count(cs.loc)) continue;
            Diagnostic d;
            d.check = kCheckBlockInMorsel;
            d.loc = cs.loc;
            d.message = "blocking call '" + display +
                        "' reachable from morsel entry '" + path.front().fn +
                        "'";
            d.path = ToDiagPath(path);
            d.path.push_back({"[blocks] " + display, cs.loc});
            by_site.emplace(cs.loc, std::move(d));
          }
        });
  for (auto& [_, d] : by_site) out->push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// Check: snapshot-nondeterminism
// ---------------------------------------------------------------------------

std::vector<std::string> SnapshotEntries(const Program& prog) {
  std::vector<std::string> entries;
  for (const auto& [qn, fn] : prog.functions) {
    if (StartsWith(fn.bare_name, "Snapshot") ||
        StartsWith(fn.bare_name, "Restore") ||
        StartsWith(fn.bare_name, "ApplyDelta")) {
      entries.push_back(qn);
    }
  }
  return entries;
}

void CheckSnapshotDeterminism(const Program& prog, const Resolver& resolver,
                              std::vector<Diagnostic>* out) {
  const auto entries = SnapshotEntries(prog);
  std::map<SourceLoc, Diagnostic> by_site;
  Reach(prog, resolver, entries,
        [&](const FunctionInfo& fn, const std::vector<PathStep>& path) {
          for (const CallSite& cs : fn.calls) {
            std::string display;
            if (!IsIntrinsicNondet(cs, &display)) continue;
            if (by_site.count(cs.loc)) continue;
            Diagnostic d;
            d.check = kCheckSnapshotDeterminism;
            d.loc = cs.loc;
            d.message = "nondeterministic call '" + display +
                        "' reachable from snapshot entry '" +
                        path.front().fn + "'";
            d.path = ToDiagPath(path);
            d.path.push_back({"[nondeterministic] " + display, cs.loc});
            by_site.emplace(cs.loc, std::move(d));
          }
        });
  for (auto& [_, d] : by_site) out->push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// Check: record-copy-in-hot-path
// ---------------------------------------------------------------------------

std::vector<std::string> HotPathEntries(const Program& prog) {
  std::vector<std::string> entries;
  for (const auto& [qn, fn] : prog.functions) {
    if (fn.class_name.empty()) continue;
    if ((fn.bare_name == "ProcessBatch" || fn.bare_name == "ProcessRecord") &&
        (prog.DerivesFrom(fn.class_name, "Operator") || fn.is_override)) {
      entries.push_back(qn);
    }
    if ((fn.bare_name == "Emit" || fn.bare_name == "EmitBatch") &&
        prog.DerivesFrom(fn.class_name, "Collector")) {
      entries.push_back(qn);
    }
  }
  return entries;
}

void CheckRecordCopies(const Program& prog, const Resolver& resolver,
                       std::vector<Diagnostic>* out) {
  const auto entries = HotPathEntries(prog);
  std::map<SourceLoc, Diagnostic> by_site;
  auto is_hot_type = [](const std::string& type) {
    return type == "Record" || type == "Value";
  };
  Reach(prog, resolver, entries,
        [&](const FunctionInfo& fn, const std::vector<PathStep>& path) {
          auto report = [&](const SourceLoc& loc, const std::string& desc) {
            if (by_site.count(loc)) return;
            Diagnostic d;
            d.check = kCheckRecordCopy;
            d.loc = loc;
            d.message = desc + " on hot path from '" + path.front().fn + "'";
            d.path = ToDiagPath(path);
            d.path.push_back({"[copies] " + desc, loc});
            by_site.emplace(loc, std::move(d));
          };
          // Copy-initialized locals the frontend saw directly.
          for (const RecordCopy& copy : fn.copies) {
            report(copy.loc, copy.description);
          }
          // Lvalue arguments bound to by-value Record/Value parameters.
          for (const CallSite& cs : fn.calls) {
            for (const std::string& target : resolver.Targets(fn, cs)) {
              auto it = prog.functions.find(target);
              if (it == prog.functions.end()) continue;
              const FunctionInfo& callee = it->second;
              const size_t n = std::min(cs.args.size(), callee.params.size());
              for (size_t k = 0; k < n; ++k) {
                const auto& arg = cs.args[k];
                const auto& param = callee.params[k];
                if (arg.lvalue_head.empty() || !param.by_value ||
                    !is_hot_type(param.type)) {
                  continue;
                }
                // Require the argument's own type to confirm (avoids
                // overload-merge noise).
                auto lt = fn.local_types.find(arg.lvalue_head);
                if (lt == fn.local_types.end() || lt->second != param.type) {
                  continue;
                }
                report(cs.loc,
                       param.type + " '" + arg.lvalue_head +
                           "' passed by value to '" + target + "'" +
                           (arg.conditional ? " on one ?: branch" : ""));
              }
            }
          }
        });
  for (auto& [_, d] : by_site) out->push_back(std::move(d));
}

// ---------------------------------------------------------------------------
// Check: raw-socket
// ---------------------------------------------------------------------------

/// socket(2)/socketpair(2) creation is confined to the network edge:
/// src/net/ wraps every descriptor in an owning Fd, sets O_NONBLOCK +
/// CLOEXEC, and keeps blocking IO off the worker pool. A raw socket call
/// anywhere else reintroduces an unaccounted, blocking-by-default fd.
/// Not reachability-based: creation is forbidden outside the edge no
/// matter who calls the creator.
void CheckRawSocket(const Program& prog, std::vector<Diagnostic>* out) {
  for (const auto& [qn, fn] : prog.functions) {
    for (const CallSite& cs : fn.calls) {
      if (!cs.qualifier.empty() || !cs.receiver_chain.empty()) continue;
      if (cs.name != "socket" && cs.name != "socketpair") continue;
      if (IsNetEdgeFile(cs.loc)) continue;
      Diagnostic d;
      d.check = kCheckRawSocket;
      d.loc = cs.loc;
      d.message = "raw " + cs.name +
                  "(2) call in '" + qn +
                  "' outside src/net/ -- socket creation belongs to the "
                  "network edge";
      d.path.push_back({qn, fn.loc});
      d.path.push_back({"[creates socket] " + cs.name, cs.loc});
      out->push_back(std::move(d));
    }
  }
}

// ---------------------------------------------------------------------------
// Check: lock-order-cycle
// ---------------------------------------------------------------------------

struct LockEdge {
  std::string held;
  std::string acquired;
  std::string fn;  // witness function
  SourceLoc loc;   // witness acquisition / call site
};

bool IsLockMachinery(const std::string& class_name) {
  return class_name == "Mutex" || class_name == "MutexLock" ||
         class_name == "CondVar";
}

void CheckLockOrder(const Program& prog, const Resolver& resolver,
                    std::vector<Diagnostic>* out) {
  // Transitive lock sets per function (fixpoint; graph is small).
  std::map<std::string, std::set<std::string>> acq;
  for (const auto& [qn, fn] : prog.functions) {
    if (IsLockMachinery(fn.class_name)) continue;
    for (const auto& l : fn.locks) acq[qn].insert(l.lock_id);
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [qn, fn] : prog.functions) {
      if (IsLockMachinery(fn.class_name)) continue;
      auto& mine = acq[qn];
      const size_t before = mine.size();
      for (const CallSite& cs : fn.calls) {
        for (const std::string& t : resolver.Targets(fn, cs)) {
          auto it = acq.find(t);
          if (it == acq.end()) continue;
          mine.insert(it->second.begin(), it->second.end());
        }
      }
      changed = changed || mine.size() != before;
    }
  }
  // Edges held -> acquired, with witnesses.
  std::map<std::pair<std::string, std::string>, LockEdge> edges;
  auto add_edge = [&](const std::string& held, const std::string& acquired,
                      const std::string& fn, const SourceLoc& loc) {
    if (held == acquired) return;  // re-entrancy is the annotations' job
    edges.emplace(std::make_pair(held, acquired),
                  LockEdge{held, acquired, fn, loc});
  };
  for (const auto& [qn, fn] : prog.functions) {
    if (IsLockMachinery(fn.class_name)) continue;
    for (const auto& l : fn.locks) {
      for (const auto& h : l.held_locks) add_edge(h, l.lock_id, qn, l.loc);
    }
    for (const CallSite& cs : fn.calls) {
      if (cs.held_locks.empty()) continue;
      for (const std::string& t : resolver.Targets(fn, cs)) {
        auto it = acq.find(t);
        if (it == acq.end()) continue;
        for (const std::string& l : it->second) {
          for (const auto& h : cs.held_locks) add_edge(h, l, qn, cs.loc);
        }
      }
    }
  }
  // Cycle detection: DFS with colors; report each cycle canonically once.
  std::map<std::string, std::vector<std::string>> adj;
  for (const auto& [key, _] : edges) adj[key.first].push_back(key.second);
  std::set<std::string> reported;
  std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
  std::vector<std::string> stack;
  std::function<void(const std::string&)> dfs = [&](const std::string& u) {
    color[u] = 1;
    stack.push_back(u);
    for (const auto& v : adj[u]) {
      if (color[v] == 1) {
        // Found a cycle: stack from v..u.
        auto it = std::find(stack.begin(), stack.end(), v);
        std::vector<std::string> cycle(it, stack.end());
        // Canonical rotation: smallest element first.
        auto mn = std::min_element(cycle.begin(), cycle.end());
        std::rotate(cycle.begin(), mn, cycle.end());
        std::string key;
        for (const auto& c : cycle) key += c + ";";
        if (!reported.insert(key).second) continue;
        Diagnostic d;
        d.check = kCheckLockOrder;
        d.message = "lock-order cycle: ";
        for (size_t k = 0; k < cycle.size(); ++k) {
          d.message += cycle[k] + " -> ";
        }
        d.message += cycle[0];
        for (size_t k = 0; k < cycle.size(); ++k) {
          const std::string& a = cycle[k];
          const std::string& b = cycle[(k + 1) % cycle.size()];
          auto e = edges.find({a, b});
          if (e == edges.end()) continue;
          d.path.push_back({"holds '" + a + "', acquires '" + b + "' in " +
                                e->second.fn,
                            e->second.loc});
        }
        if (!d.path.empty()) d.loc = d.path.front().second;
        out->push_back(std::move(d));
      } else if (color[v] == 0) {
        dfs(v);
      }
    }
    stack.pop_back();
    color[u] = 2;
  };
  for (const auto& [u, _] : adj) {
    if (color[u] == 0) dfs(u);
  }
}

// ---------------------------------------------------------------------------
// Waivers
// ---------------------------------------------------------------------------

bool WaiverMatches(const Waiver& w, const Diagnostic& d) {
  if (w.check != d.check) return false;
  auto near = [&](const SourceLoc& loc) {
    return loc.file == w.loc.file &&
           (loc.line == w.loc.line || loc.line == w.loc.line + 1);
  };
  if (near(d.loc)) return true;
  for (const auto& [_, loc] : d.path) {
    if (near(loc)) return true;
  }
  return false;
}

}  // namespace

std::vector<Diagnostic> RunChecks(Program& prog, const CheckOptions& opts) {
  ResolveLockIds(&prog);
  Resolver resolver(prog);
  std::vector<Diagnostic> all;
  auto enabled = [&](const char* name) {
    return opts.only.empty() || opts.only.count(name) > 0;
  };
  if (enabled(kCheckBlockInMorsel)) {
    CheckBlockInMorsel(prog, resolver, opts, &all);
  }
  if (enabled(kCheckLockOrder)) CheckLockOrder(prog, resolver, &all);
  if (enabled(kCheckSnapshotDeterminism)) {
    CheckSnapshotDeterminism(prog, resolver, &all);
  }
  if (enabled(kCheckRecordCopy)) CheckRecordCopies(prog, resolver, &all);
  if (enabled(kCheckRawSocket)) CheckRawSocket(prog, &all);

  // Apply waivers: a matching waiver with a reason suppresses; one without
  // a reason is itself an error and suppresses nothing.
  std::vector<Diagnostic> kept;
  for (auto& d : all) {
    bool suppressed = false;
    for (const Waiver& w : prog.waivers) {
      if (!WaiverMatches(w, d)) continue;
      w.used = true;
      if (!w.reason.empty()) suppressed = true;
    }
    if (!suppressed) kept.push_back(std::move(d));
  }
  for (const Waiver& w : prog.waivers) {
    if (w.used && w.reason.empty()) {
      Diagnostic d;
      d.check = kCheckStaleWaiver;
      d.loc = w.loc;
      d.message = "waiver for '" + w.check + "' is missing a reason "
                  "(use `analyzer:allow(" + w.check + "): <why>`)";
      kept.push_back(std::move(d));
    } else if (!w.used && enabled(w.check.c_str())) {
      // A waiver for a check that did not run this invocation cannot be
      // judged stale; only full runs police staleness.
      Diagnostic d;
      d.check = kCheckStaleWaiver;
      d.loc = w.loc;
      d.message = "stale waiver: no '" + w.check +
                  "' diagnostic matches this `analyzer:allow`";
      kept.push_back(std::move(d));
    }
  }
  std::sort(kept.begin(), kept.end());
  kept.erase(std::unique(kept.begin(), kept.end(),
                         [](const Diagnostic& a, const Diagnostic& b) {
                           return !(a < b) && !(b < a);
                         }),
             kept.end());
  return kept;
}

std::string FormatDiagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << d.loc.file << ":" << d.loc.line << ": [" << d.check << "] "
     << d.message << "\n";
  for (size_t k = 0; k < d.path.size(); ++k) {
    os << "    #" << k << " " << d.path[k].first << " @ "
       << d.path[k].second.file << ":" << d.path[k].second.line << "\n";
  }
  return os.str();
}

}  // namespace streamline::analyzer
