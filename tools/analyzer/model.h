#ifndef STREAMLINE_TOOLS_ANALYZER_MODEL_H_
#define STREAMLINE_TOOLS_ANALYZER_MODEL_H_

// Frontend-independent program model of streamline-analyzer.
//
// A frontend (the built-in structural parser in parse.cc, or the optional
// Clang libTooling frontend) reduces every translation unit to per-function
// summaries: calls made, locks acquired and the program order between them,
// blocking/nondeterministic primitives used, and Record copy constructions.
// Everything downstream -- call-graph construction, reachability checks,
// lock-order propagation, diagnostics -- consumes only this model, so the
// checks do not care which frontend produced it.

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace streamline::analyzer {

struct SourceLoc {
  std::string file;  // path as given on the command line (repo-relative in CI)
  int line = 0;

  bool operator<(const SourceLoc& o) const {
    if (file != o.file) return file < o.file;
    return line < o.line;
  }
  bool operator==(const SourceLoc& o) const {
    return file == o.file && line == o.line;
  }
};

/// One call expression inside a function body.
struct CallSite {
  /// Name as written: "Foo", "obj.Foo" resolved to just "Foo"; qualified
  /// calls keep their qualifier ("QueryRegistry::CommandsAfter" or
  /// "std::this_thread::sleep_for").
  std::string name;
  std::string qualifier;  // explicit A::B qualifier, if written
  /// Receiver chain for member calls, outermost first: `a[i]->b.Foo()`
  /// yields {"a", "b"}. Empty for free/unqualified calls.
  std::vector<std::string> receiver_chain;
  SourceLoc loc;
  /// Locks (canonical ids, see LockAcquire) held at this call site, in
  /// acquisition order. Filled by ResolveLockIds from held_idx.
  std::vector<std::string> held_locks;
  /// Frontend-internal: indices into FunctionInfo::locks held here.
  std::vector<int> held_idx;
  /// True when the callee expression is a function-typed variable
  /// (std::function, callback member): an opaque indirect call the
  /// analyzer deliberately does not follow.
  bool indirect = false;

  /// Call arguments, for by-value copy detection. One entry per top-level
  /// argument.
  struct Arg {
    /// First identifier of a plain lvalue chain ("record" for
    /// `record.key`), empty when the argument is a computed value /
    /// std::move / temporary (i.e. not a copy source).
    std::string lvalue_head;
    /// True when the lvalue is one branch of a ?: (conditional copy, the
    /// broadcast `last ? std::move(r) : r` idiom).
    bool conditional = false;
  };
  std::vector<Arg> args;
};

/// One lock acquisition (RAII MutexLock or explicit .Lock()).
struct LockAcquire {
  /// Canonical lock identity: "Class::field_" for member mutexes (of this
  /// or any other object -- ordering is per lock *site class*, the standard
  /// static approximation), "Fn/local" for locals. Filled by
  /// ResolveLockIds; frontends record `chain` instead (member declarations
  /// may not have been parsed yet when a body is seen).
  std::string lock_id;
  /// Receiver chain of the mutex expression: `&workers_[i]->mu` yields
  /// {"workers_", "mu"}.
  std::vector<std::string> chain;
  SourceLoc loc;
  /// Locks already held when this one was acquired, in order. Filled by
  /// ResolveLockIds from held_idx.
  std::vector<std::string> held_locks;
  std::vector<int> held_idx;
};

/// Why a primitive is interesting to a check.
enum class PrimKind {
  kBlocking,        // CondVar::Wait, sleep, fsync, Doorbell::Park, ...
  kNondeterminism,  // system_clock::now, rand(), random_device, ...
};

struct PrimitiveUse {
  PrimKind kind = PrimKind::kBlocking;
  std::string name;  // display name, e.g. "std::this_thread::sleep_for"
  SourceLoc loc;
};

/// A copy construction of a Record (assignment-init from an lvalue,
/// direct-init from an lvalue, pass-by-value, push_back of a named Record).
struct RecordCopy {
  std::string description;  // e.g. "Record copied into push_back"
  SourceLoc loc;
};

struct FunctionInfo {
  /// Qualified name, e.g. "QueryRegistry::WaitQueryApplied" or "KeyHashOf".
  std::string qualified_name;
  std::string class_name;  // enclosing class ("" for free functions)
  std::string bare_name;   // "WaitQueryApplied"
  SourceLoc loc;           // definition site
  bool is_override = false;

  std::vector<CallSite> calls;
  std::vector<LockAcquire> locks;
  std::vector<PrimitiveUse> prims;
  std::vector<RecordCopy> copies;

  /// Parameters in order, for by-value copy detection at call sites.
  struct Param {
    std::string type;     // unwrapped class type
    bool by_value = false;  // no & / * in the declared type
  };
  std::vector<Param> params;

  /// Local variable / parameter types, for receiver resolution:
  /// name -> unwrapped class type ("QueryRegistry" for
  /// std::shared_ptr<QueryRegistry>).
  std::map<std::string, std::string> local_types;

  /// Range-for variables declared `auto`: name -> receiver chain of the
  /// container expression (`for (auto& op : ops)` yields op -> {"ops"}).
  /// The resolver types them as the container's unwrapped element type.
  std::map<std::string, std::vector<std::string>> local_elem_of;
};

struct ClassInfo {
  std::string name;                 // unqualified ("Task", "QueryRegistry")
  std::vector<std::string> bases;   // direct bases, unqualified
  SourceLoc loc;
  /// Member variable name -> unwrapped class type.
  std::map<std::string, std::string> member_types;
  /// Type aliases declared in the class body (using X = Y<...>): X -> Y.
  std::map<std::string, std::string> aliases;
  /// Methods *declared* in the class body (definitions may be out of line).
  std::set<std::string> method_names;
};

/// A waiver comment: `// analyzer:allow(<check>): <reason>`.
struct Waiver {
  std::string check;
  std::string reason;  // empty => error (waiver-missing-reason)
  SourceLoc loc;
  mutable bool used = false;
};

/// The whole-program model all checks run over.
struct Program {
  /// Keyed by qualified name. Overloads collapse into one summary (their
  /// facts merge), which is the right conservative behavior for
  /// reachability.
  std::map<std::string, FunctionInfo> functions;
  std::map<std::string, ClassInfo> classes;
  std::vector<Waiver> waivers;

  /// Derived: class -> transitive subclasses (filled by BuildHierarchy).
  std::map<std::string, std::set<std::string>> subclasses;

  void BuildHierarchy();
  /// True when `cls` is `base` or transitively derives from it.
  bool DerivesFrom(const std::string& cls, const std::string& base) const;
};

/// One reported finding, with the call path that proves reachability.
struct Diagnostic {
  std::string check;
  SourceLoc loc;      // primary location (the offending primitive / site)
  std::string message;
  /// Call path, entry first: "WindowAggOperator::ProcessWatermark" ...
  /// each with its call-site location. Lines on this path are valid waiver
  /// anchor points.
  std::vector<std::pair<std::string, SourceLoc>> path;

  bool operator<(const Diagnostic& o) const {
    if (check != o.check) return check < o.check;
    if (!(loc == o.loc)) return loc < o.loc;
    return message < o.message;
  }
};

}  // namespace streamline::analyzer

#endif  // STREAMLINE_TOOLS_ANALYZER_MODEL_H_
