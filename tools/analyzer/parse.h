#ifndef STREAMLINE_TOOLS_ANALYZER_PARSE_H_
#define STREAMLINE_TOOLS_ANALYZER_PARSE_H_

#include <string>

#include "lex.h"
#include "model.h"

namespace streamline::analyzer {

/// Structural C++ frontend: reduces one lexed file to the program model.
/// It is not a full C++ parser -- it tracks namespace/class/function scopes
/// by brace structure and extracts the declaration and statement shapes the
/// checks need (function definitions with qualified names, class bases and
/// member types, call expressions with receiver chains, RAII/explicit lock
/// acquisitions with scopes, local variable types, Record copy inits).
/// Facts it cannot classify are dropped conservatively on the side that
/// keeps the call graph over-approximate (unknown receivers fall back to
/// name-based resolution in the resolver, not to silence).
void ParseFile(const LexedFile& file, Program* prog);

/// Scans a file's comments for `analyzer:allow(<check>): <reason>` waivers.
void CollectWaivers(const LexedFile& file, Program* prog);

}  // namespace streamline::analyzer

#endif  // STREAMLINE_TOOLS_ANALYZER_PARSE_H_
