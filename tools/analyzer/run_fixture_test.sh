#!/bin/sh
# Golden test for streamline-analyzer.
#
#   run_fixture_test.sh <path-to-streamline-analyzer>
#
# Runs the analyzer over the fixture corpus and compares the diagnostics
# byte-for-byte against testdata/expected.txt (which demonstrates, for every
# check, one firing case, one waived case, and one clean case -- clean cases
# prove themselves by their absence). Also asserts the exit-code contract:
# 1 for the firing corpus, 0 with empty stdout for a waiver-only scope, and
# 2 for a bad invocation.
set -u

if [ $# -ne 1 ]; then
  echo "usage: $0 <streamline-analyzer binary>" >&2
  exit 2
fi
analyzer=$1
cd "$(dirname "$0")"

fail=0

# 1. Firing corpus: exit 1, output matches the golden file exactly.
out=$("$analyzer" --src testdata/fixture_src 2>/dev/null)
status=$?
if [ "$status" -ne 1 ]; then
  echo "FAIL: expected exit 1 on fixture corpus, got $status" >&2
  fail=1
fi
if ! printf '%s\n' "$out" | diff -u testdata/expected.txt -; then
  echo "FAIL: diagnostics differ from testdata/expected.txt" >&2
  echo "      (if the change is intentional, regenerate with:" >&2
  echo "       streamline-analyzer --src testdata/fixture_src > testdata/expected.txt)" >&2
  fail=1
fi

# 2. Single-check scoping: only that check's diagnostics appear.
out=$("$analyzer" --src testdata/fixture_src --check lock-order-cycle \
      2>/dev/null)
status=$?
if [ "$status" -ne 1 ]; then
  echo "FAIL: expected exit 1 with --check lock-order-cycle, got $status" >&2
  fail=1
fi
if printf '%s\n' "$out" | grep -q 'block-in-morsel\|record-copy\|nondeterminism'; then
  echo "FAIL: --check lock-order-cycle leaked other checks' diagnostics" >&2
  fail=1
fi
if ! printf '%s\n' "$out" | grep -q 'lock-order cycle: InvertedPair'; then
  echo "FAIL: --check lock-order-cycle missed the InvertedPair cycle" >&2
  fail=1
fi

# 3. Usage errors exit 2.
"$analyzer" >/dev/null 2>&1
if [ $? -ne 2 ]; then
  echo "FAIL: expected exit 2 with no arguments" >&2
  fail=1
fi
"$analyzer" --src testdata/no_such_dir >/dev/null 2>&1
if [ $? -ne 2 ]; then
  echo "FAIL: expected exit 2 on missing directory" >&2
  fail=1
fi

# 4. --list-waivers inventories every allow comment in the corpus.
count=$("$analyzer" --src testdata/fixture_src --list-waivers | wc -l)
if [ "$count" -ne 8 ]; then
  echo "FAIL: expected 8 waivers from --list-waivers, got $count" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "PASS: analyzer fixture golden test"
fi
exit "$fail"
