// streamline-analyzer: cross-TU call-graph checks for the STREAMLINE engine.
//
//   streamline-analyzer --src src [--src more/dir] [--compdb build/compile_commands.json]
//                       [--check block-in-morsel] [--list-waivers] [--list-entries]
//
// Scans the given directories (.h/.cc/.hpp/.cpp), builds the program model
// with the structural frontend, and runs the reachability checks:
//   block-in-morsel          no blocking primitive reachable from Step /
//                            ProcessBatch / ProcessRecord / ProcessWatermark
//                            (blocking socket syscalls count, unless the
//                            call passes MSG_DONTWAIT or lives in src/net/)
//   lock-order-cycle         no cycle in the static lock-acquisition graph
//   snapshot-nondeterminism  no wall clock / PRNG reachable from Snapshot* /
//                            Restore* / ApplyDelta
//   record-copy-in-hot-path  no Record/Value lvalue copies on Emit/Process
//                            chains
//   raw-socket               socket(2)/socketpair(2) confined to src/net/
//
// Diagnostics carry the full call path. Suppress a finding by placing
// `// analyzer:allow(<check>): <reason>` on (or directly above) any line of
// its path; waivers that match nothing, or lack a reason, are errors.
//
// Exit codes: 0 clean, 1 diagnostics found, 2 usage/IO error.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "checks.h"
#include "lex.h"
#include "model.h"
#include "parse.h"

#if STREAMLINE_ANALYZER_WITH_CLANG
#include "clang_frontend.h"
#endif

namespace fs = std::filesystem;
using namespace streamline::analyzer;

namespace {

bool HasSourceExt(const fs::path& p) {
  const std::string e = p.extension().string();
  return e == ".h" || e == ".cc" || e == ".hpp" || e == ".cpp";
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::cerr << "streamline-analyzer: cannot read " << path << "\n";
    std::exit(2);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Minimal extraction of "file" entries from compile_commands.json --
/// enough to cross-check scan coverage without a JSON dependency.
std::vector<std::string> CompdbFiles(const std::string& path) {
  const std::string text = ReadFileOrDie(path);
  std::vector<std::string> files;
  const std::string key = "\"file\"";
  size_t pos = 0;
  while ((pos = text.find(key, pos)) != std::string::npos) {
    pos += key.size();
    size_t q1 = text.find('"', pos);
    if (q1 == std::string::npos) break;
    size_t q2 = text.find('"', q1 + 1);
    if (q2 == std::string::npos) break;
    files.push_back(text.substr(q1 + 1, q2 - q1 - 1));
    pos = q2 + 1;
  }
  return files;
}

void Usage() {
  std::cerr
      << "usage: streamline-analyzer --src DIR [--src DIR]...\n"
      << "           [--compdb compile_commands.json] [--check NAME]...\n"
      << "           [--frontend structural|clang]\n"
      << "           [--list-waivers] [--list-entries]\n"
      << "checks: block-in-morsel lock-order-cycle snapshot-nondeterminism\n"
      << "        record-copy-in-hot-path raw-socket\n"
      << "the clang frontend requires --compdb and a build configured with\n"
      << "-DSTREAMLINE_ANALYZER_WITH_CLANG=ON\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> src_dirs;
  std::string compdb;
  std::string frontend = "structural";
  CheckOptions opts;
  bool list_waivers = false;
  bool list_entries = false;
  std::string dump_calls;
  bool dump_locks = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> std::string {
      if (i + 1 >= argc) {
        Usage();
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--src") {
      src_dirs.push_back(next());
    } else if (arg == "--compdb") {
      compdb = next();
    } else if (arg == "--frontend") {
      frontend = next();
      if (frontend != "structural" && frontend != "clang") {
        std::cerr << "streamline-analyzer: unknown frontend '" << frontend
                  << "'\n";
        return 2;
      }
    } else if (arg == "--check") {
      opts.only.insert(next());
    } else if (arg == "--list-waivers") {
      list_waivers = true;
    } else if (arg == "--list-entries") {
      list_entries = true;
    } else if (arg == "--dump-calls") {
      dump_calls = next();
    } else if (arg == "--dump-locks") {
      dump_locks = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else {
      std::cerr << "streamline-analyzer: unknown argument '" << arg << "'\n";
      Usage();
      return 2;
    }
  }
  if (src_dirs.empty()) {
    Usage();
    return 2;
  }

  // Collect files (sorted for deterministic output).
  std::set<std::string> files;
  for (const auto& dir : src_dirs) {
    std::error_code ec;
    fs::recursive_directory_iterator it(dir, ec), end;
    if (ec) {
      std::cerr << "streamline-analyzer: cannot scan " << dir << ": "
                << ec.message() << "\n";
      return 2;
    }
    for (; it != end; ++it) {
      if (it->is_regular_file() && HasSourceExt(it->path())) {
        files.insert(it->path().generic_string());
      }
    }
  }
  // compile_commands.json cross-check: every TU under a scanned dir must be
  // covered; TUs elsewhere (tests, benches) are out of scope.
  if (!compdb.empty()) {
    std::set<std::string> canonical;
    for (const auto& f : files) {
      std::error_code ec;
      const auto c = fs::weakly_canonical(f, ec);
      if (!ec) canonical.insert(c.generic_string());
    }
    for (const auto& f : CompdbFiles(compdb)) {
      std::error_code ec;
      const auto c = fs::weakly_canonical(f, ec);
      if (ec) continue;
      bool in_scope = false;
      for (const auto& dir : src_dirs) {
        const auto d = fs::weakly_canonical(dir, ec);
        if (!ec && c.generic_string().rfind(d.generic_string() + "/", 0) == 0) {
          in_scope = true;
        }
      }
      if (in_scope && !canonical.count(c.generic_string())) {
        std::cerr << "streamline-analyzer: compile_commands.json TU not "
                  << "covered by scan: " << c.generic_string() << "\n";
        return 2;
      }
    }
  }

  Program prog;
  if (frontend == "clang") {
#if STREAMLINE_ANALYZER_WITH_CLANG
    if (compdb.empty()) {
      std::cerr << "streamline-analyzer: --frontend clang requires "
                << "--compdb\n";
      return 2;
    }
    std::string err;
    if (!ParseWithClang(compdb, src_dirs, &prog, &err)) {
      std::cerr << "streamline-analyzer: " << err << "\n";
      return 2;
    }
    // Waivers stay comment-based under either frontend.
    for (const auto& f : files) {
      CollectWaivers(Lex(f, ReadFileOrDie(f)), &prog);
    }
#else
    std::cerr << "streamline-analyzer: built without the clang frontend "
              << "(reconfigure with -DSTREAMLINE_ANALYZER_WITH_CLANG=ON)\n";
    return 2;
#endif
  } else {
    for (const auto& f : files) {
      LexedFile lexed = Lex(f, ReadFileOrDie(f));
      ParseFile(lexed, &prog);
      CollectWaivers(lexed, &prog);
    }
  }
  prog.BuildHierarchy();

  if (list_waivers) {
    for (const auto& w : prog.waivers) {
      std::cout << w.loc.file << ":" << w.loc.line << ": allow(" << w.check
                << ")" << (w.reason.empty() ? "  [MISSING REASON]" : ": " + w.reason)
                << "\n";
    }
    return 0;
  }
  if (list_entries) {
    // Debug aid: show what the checks treat as roots.
    for (const auto& [qn, fn] : prog.functions) {
      const bool morsel =
          (fn.bare_name == "Step" &&
           prog.DerivesFrom(fn.class_name, "Schedulable")) ||
          ((fn.bare_name == "ProcessBatch" || fn.bare_name == "ProcessRecord" ||
            fn.bare_name == "ProcessWatermark") &&
           (prog.DerivesFrom(fn.class_name, "Operator") || fn.is_override));
      const bool snap = fn.bare_name.rfind("Snapshot", 0) == 0 ||
                        fn.bare_name.rfind("Restore", 0) == 0 ||
                        fn.bare_name.rfind("ApplyDelta", 0) == 0;
      if (morsel) std::cout << "morsel-entry: " << qn << "\n";
      if (snap) std::cout << "snapshot-entry: " << qn << "\n";
    }
    return 0;
  }

  if (!dump_calls.empty()) {
    ResolveLockIds(&prog);
    Resolver resolver(prog);
    auto it = prog.functions.find(dump_calls);
    if (it == prog.functions.end()) {
      std::cerr << "no function '" << dump_calls << "'\n";
      return 2;
    }
    for (const auto& cs : it->second.calls) {
      std::cout << cs.loc.file << ":" << cs.loc.line << ": " << cs.name
                << (cs.indirect ? " [indirect]" : "");
      if (!cs.held_locks.empty()) {
        std::cout << " [holds";
        for (const auto& h : cs.held_locks) std::cout << " " << h;
        std::cout << "]";
      }
      std::cout << " ->";
      for (const auto& t : resolver.Targets(it->second, cs)) {
        std::cout << " " << t;
      }
      std::cout << "\n";
    }
    for (const auto& l : it->second.locks) {
      std::cout << l.loc.file << ":" << l.loc.line << ": LOCK " << l.lock_id;
      for (const auto& h : l.held_locks) std::cout << " (held " << h << ")";
      std::cout << "\n";
    }
    return 0;
  }
  if (dump_locks) {
    ResolveLockIds(&prog);
    for (const auto& [qn, fn] : prog.functions) {
      for (const auto& l : fn.locks) {
        std::cout << qn << ": " << l.lock_id;
        for (const auto& h : l.held_locks) std::cout << " (held " << h << ")";
        std::cout << " @ " << l.loc.file << ":" << l.loc.line << "\n";
      }
    }
    return 0;
  }

  const std::vector<Diagnostic> diags = RunChecks(prog, opts);
  for (const auto& d : diags) {
    std::cout << FormatDiagnostic(d);
  }
  if (diags.empty()) {
    std::cerr << "streamline-analyzer: clean (" << files.size() << " files, "
              << prog.functions.size() << " functions)\n";
    return 0;
  }
  std::cerr << "streamline-analyzer: " << diags.size() << " diagnostic(s)\n";
  return 1;
}
