#include "engine.h"

// snapshot-nondeterminism cases.

class StateHolder {
 public:
  /// FIRING: snapshot path stamps wall-clock time through a helper.
  void SnapshotState() { StampTime(); }

  /// WAIVED: restore path seeds from rand(), with a reasoned waiver.
  void RestoreState() {
    // analyzer:allow(snapshot-nondeterminism): fixture models a vetted seed
    seed_ = rand();
  }

  /// CLEAN: delta application is pure state transformation.
  void ApplyDelta(int delta) { seed_ += delta; }

 private:
  void StampTime() {
    stamp_ = std::chrono::system_clock::now().time_since_epoch().count();
  }

  long stamp_ = 0;
  int seed_ = 0;
};
