#include "engine.h"

// stale-waiver cases.

/// STALE: nothing here acquires a lock, so this waiver matches no
/// diagnostic and is itself reported.
// analyzer:allow(lock-order-cycle): left behind after a refactor
int UnrelatedHelper() { return 3; }

/// MISSING REASON: the waiver matches a real copy diagnostic, but a
/// reasonless waiver suppresses nothing -- both the copy and the
/// missing-reason error are reported.
class StaleOperator : public Operator {
 public:
  void ProcessRecord(Record& r) override {
    // analyzer:allow(record-copy-in-hot-path)
    Record dup = r;
    dup.key_hash = 0;
  }
  void ProcessBatch(std::vector<Record>& batch) override { batch.clear(); }
};
