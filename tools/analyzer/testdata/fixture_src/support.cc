#include "engine.h"

// Out-of-line ChannelHelper bodies: the blocking one is only reachable via
// the call in blocking.cc, so the diagnostic's path spans three files.

void ChannelHelper::BlockingPop() {
  MutexLock hold(&mu_);
  cv_.Wait(&mu_);
}

void ChannelHelper::FastPop() {
  MutexLock hold(&mu_);
}
