#include "engine.h"

#include <utility>

// record-copy-in-hot-path cases.

/// FIRING (decl copy) and CLEAN (move) inside an Operator hot path.
class CopyOperator : public Operator {
 public:
  void ProcessRecord(Record& r) override {
    Record dup = r;
    Stash(std::move(dup));
  }
  void ProcessBatch(std::vector<Record>& batch) override {
    for (auto& r : batch) {
      Record moved = std::move(r);
      Stash(std::move(moved));
    }
  }

 private:
  void Stash(Record&& r) { staged_.push_back(std::move(r)); }

  std::vector<Record> staged_;
};

/// FIRING (by-value parameter) and WAIVED variants on a Collector Emit
/// chain.
class FanoutCollector : public Collector {
 public:
  void Emit(Record& r) {
    Record staged = std::move(r);
    Forward(staged);
    // analyzer:allow(record-copy-in-hot-path): fixture models a vetted copy
    Forward(staged);
  }

 private:
  void Forward(Record r) { staged_.push_back(std::move(r)); }

  std::vector<Record> staged_;
};
