#include "engine.h"

// Socket cases: blocking socket syscalls are blocking primitives
// (block-in-morsel), and raw socket creation outside a net/ directory is
// its own check (raw-socket). The sanctioned counterparts live in
// net/edge.cc.

/// FIRING: Step does a blocking recv(2) straight off a morsel.
class SocketPollTask : public Schedulable {
 public:
  bool Step() override {
    char buf[16];
    long n = recv(fd_, buf, sizeof(buf), 0);
    return n > 0;
  }

 private:
  int fd_ = -1;
};

/// WAIVED: blocking send(2) on a Step, with a reasoned waiver.
class SocketPushTask : public Schedulable {
 public:
  bool Step() override {
    // analyzer:allow(block-in-morsel): fixture models a sanctioned drain
    long n = send(fd_, "x", 1, 0);
    return n == 1;
  }

 private:
  int fd_ = -1;
};

/// CLEAN: MSG_DONTWAIT makes the recv non-blocking per call.
class NonBlockingPollTask : public Schedulable {
 public:
  bool Step() override {
    char buf[16];
    long n = recv(fd_, buf, sizeof(buf), MSG_DONTWAIT);
    return n > 0;
  }

 private:
  int fd_ = -1;
};

/// FIRING: raw socket(2) outside the net edge.
int OpenRawSocket() { return socket(2, 1, 0); }

/// WAIVED: raw socketpair(2), with a reasoned waiver.
int OpenWaivedPair(int* fds) {
  // analyzer:allow(raw-socket): fixture models a sanctioned self-pipe
  return socketpair(1, 1, 0, fds);
}
