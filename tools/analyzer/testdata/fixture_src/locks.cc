#include "engine.h"

// lock-order-cycle cases.

/// FIRING: a_ -> b_ intra-function, b_ -> a_ through a callee.
class InvertedPair {
 public:
  void TakeAThenB() {
    MutexLock a(&a_);
    MutexLock b(&b_);
  }
  void TakeBThenA() {
    MutexLock b(&b_);
    GrabA();
  }

 private:
  void GrabA() { MutexLock a(&a_); }

  Mutex a_;
  Mutex b_;
};

/// WAIVED: same inversion shape, reasoned waiver on a witness line.
class WaivedPair {
 public:
  void TakeCThenD() {
    MutexLock c(&c_);
    // analyzer:allow(lock-order-cycle): fixture models a vetted inversion
    MutexLock d(&d_);
  }
  void TakeDThenC() {
    MutexLock d(&d_);
    GrabC();
  }

 private:
  void GrabC() { MutexLock c(&c_); }

  Mutex c_;
  Mutex d_;
};

/// CLEAN: both paths acquire e_ before f_.
class OrderedPair {
 public:
  void First() {
    MutexLock e(&e_);
    MutexLock f(&f_);
  }
  void Second() {
    MutexLock e(&e_);
    GrabF();
  }

 private:
  void GrabF() { MutexLock f(&f_); }

  Mutex e_;
  Mutex f_;
};
