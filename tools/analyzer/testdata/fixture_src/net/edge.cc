#include "../engine.h"

// CLEAN counterparts to sockets.cc: under a net/ directory the edge owns
// its socket discipline (every fd is non-blocking by construction), so
// blocking-looking syscalls and raw socket creation are sanctioned --
// neither case below may produce a diagnostic.

/// Blocking-looking accept4 on a morsel entry: sanctioned by location.
class EdgeAcceptTask : public Schedulable {
 public:
  bool Step() override {
    int client = accept4(listener_, 0, 0, 0);
    return client >= 0;
  }

 private:
  int listener_ = -1;
};

/// Raw socket creation inside the edge: where it belongs.
int OpenEdgeSocket() { return socket(2, 1, 0); }
