#include "engine.h"

// block-in-morsel cases.

/// FIRING: Step reaches CondVar::Wait through a helper in another TU.
class BlockingTask : public Schedulable {
 public:
  bool Step() override {
    queue_.BlockingPop();
    return true;
  }

 private:
  ChannelHelper queue_;
};

/// WAIVED: Step sleeps, but the site carries a reasoned waiver.
class ParkingTask : public Schedulable {
 public:
  bool Step() override {
    NapBriefly();
    return true;
  }

 private:
  void NapBriefly() {
    // analyzer:allow(block-in-morsel): fixture models a sanctioned park site
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
};

/// CLEAN: Step only does nonblocking work.
class PollingTask : public Schedulable {
 public:
  bool Step() override {
    queue_.FastPop();
    return true;
  }

 private:
  ChannelHelper queue_;
};
