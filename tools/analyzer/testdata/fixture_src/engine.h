#ifndef FIXTURE_ENGINE_H_
#define FIXTURE_ENGINE_H_

// Miniature engine surface for streamline-analyzer fixture tests. These
// files are parsed by the analyzer, never compiled; they model just enough
// of the real src/ shapes (Schedulable, Operator, Collector, Mutex/CondVar,
// Record) for every check to have a firing, a waived, and a clean case.

#include <chrono>
#include <vector>

class Mutex {
 public:
  void Lock();
  void Unlock();
};

class MutexLock {
 public:
  explicit MutexLock(Mutex* mu);
};

class CondVar {
 public:
  // Bodies are inline so the analyzer has call-graph nodes to resolve to
  // (a declared-but-bodiless method is never a target).
  void Wait(Mutex* mu) { waiters_ = waiters_ + 1; }
  bool WaitFor(Mutex* mu, int millis) { return millis > 0; }

 private:
  int waiters_ = 0;
};

class Schedulable {
 public:
  virtual ~Schedulable() = default;
  virtual bool Step() = 0;
};

struct Record {
  long key_hash = 0;
  std::vector<int> fields;
};

struct Value {
  int tag = 0;
};

class Operator {
 public:
  virtual ~Operator() = default;
  virtual void ProcessRecord(Record& r) = 0;
  virtual void ProcessBatch(std::vector<Record>& batch) = 0;
};

class Collector {
 public:
  virtual ~Collector() = default;
};

/// Cross-TU helper: declared here, bodies live in support.cc, callers in
/// blocking.cc -- the block-in-morsel firing path crosses translation units.
class ChannelHelper {
 public:
  void BlockingPop();
  void FastPop();

 private:
  Mutex mu_;
  CondVar cv_;
};

#endif  // FIXTURE_ENGINE_H_
