#ifndef STREAMLINE_TOOLS_ANALYZER_CHECKS_H_
#define STREAMLINE_TOOLS_ANALYZER_CHECKS_H_

#include <set>
#include <string>
#include <vector>

#include "model.h"

namespace streamline::analyzer {

// Check names, as used in diagnostics and `analyzer:allow(<name>)` waivers.
inline constexpr char kCheckBlockInMorsel[] = "block-in-morsel";
inline constexpr char kCheckLockOrder[] = "lock-order-cycle";
inline constexpr char kCheckSnapshotDeterminism[] = "snapshot-nondeterminism";
inline constexpr char kCheckRecordCopy[] = "record-copy-in-hot-path";
inline constexpr char kCheckRawSocket[] = "raw-socket";
inline constexpr char kCheckStaleWaiver[] = "stale-waiver";

/// Resolves call sites against the program model: explicit qualifiers,
/// receiver chains through member/local types, virtual dispatch to subclass
/// overrides, and a conservative name-based fallback for receivers the
/// structural frontend cannot type.
class Resolver {
 public:
  explicit Resolver(const Program& prog);

  /// Qualified names of possible callees (empty for indirect/intrinsic
  /// calls the checks classify themselves).
  std::vector<std::string> Targets(const FunctionInfo& caller,
                                   const CallSite& cs) const;

  /// Canonical lock id for a mutex receiver chain recorded by a frontend.
  std::string LockId(const FunctionInfo& fn,
                     const std::vector<std::string>& chain) const;

 private:
  const Program& prog_;
  std::map<std::string, std::vector<std::string>> by_bare_name_;

  std::vector<std::string> MethodTargets(const std::string& cls,
                                         const std::string& name) const;
  std::string ChainClass(const FunctionInfo& caller,
                         const std::vector<std::string>& chain) const;
  std::string FieldTypeIn(const std::string& cls,
                          const std::string& field) const;
  std::string FindFieldOwner(const std::string& cls,
                             const std::string& field) const;
  std::string ResolveAlias(const std::string& name) const;
};

/// Fills LockAcquire::lock_id and the held_locks lists from the receiver
/// chains the frontend recorded. Must run after all files are parsed (a
/// body can reference members declared later in its class).
void ResolveLockIds(Program* prog);

struct CheckOptions {
  /// Functions whose blocking facts are sanctioned (the park/doorbell sites
  /// in thread_pool.cc). Matched on qualified name.
  std::set<std::string> blocking_allowlist = {
      "WorkStealingPool::WorkerMain",
      "WorkStealingPool::TimerMain",
      "ThreadPool::WorkerMain",
  };
  /// Which checks to run (empty = all).
  std::set<std::string> only;
};

/// Runs all checks, applies waivers, appends stale-waiver diagnostics.
/// Returned diagnostics are sorted and deduplicated. Calls ResolveLockIds
/// on the program first.
std::vector<Diagnostic> RunChecks(Program& prog, const CheckOptions& opts);

/// Renders one diagnostic in the stable golden format.
std::string FormatDiagnostic(const Diagnostic& d);

}  // namespace streamline::analyzer

#endif  // STREAMLINE_TOOLS_ANALYZER_CHECKS_H_
