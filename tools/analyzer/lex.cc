#include "lex.h"

#include <cctype>

namespace streamline::analyzer {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

LexedFile Lex(const std::string& path, const std::string& content) {
  LexedFile out;
  out.path = path;
  const size_t n = content.size();
  size_t i = 0;
  int line = 1;

  auto peek = [&](size_t k) -> char {
    return i + k < n ? content[i + k] : '\0';
  };
  auto advance_over = [&](size_t count) {
    for (size_t k = 0; k < count && i < n; ++k, ++i) {
      if (content[i] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Preprocessor directive: only when '#' starts the line (modulo
    // whitespace). Consume through any backslash continuations.
    if (c == '#') {
      bool at_line_start = true;
      for (size_t k = i; k-- > 0;) {
        if (content[k] == '\n') break;
        if (!std::isspace(static_cast<unsigned char>(content[k]))) {
          at_line_start = false;
          break;
        }
      }
      if (at_line_start) {
        while (i < n) {
          if (content[i] == '\\' && peek(1) == '\n') {
            advance_over(2);
            continue;
          }
          if (content[i] == '\n') break;  // newline handled by main loop
          ++i;
        }
        continue;
      }
      out.tokens.push_back({TokKind::kPunct, "#", line});
      ++i;
      continue;
    }
    // Comments (recorded for waiver scanning).
    if (c == '/' && peek(1) == '/') {
      const int start_line = line;
      size_t j = i;
      while (j < n && content[j] != '\n') ++j;
      out.comments.push_back({start_line, content.substr(i, j - i)});
      i = j;
      continue;
    }
    if (c == '/' && peek(1) == '*') {
      const int start_line = line;
      size_t j = i + 2;
      int end_line = line;
      while (j + 1 < n && !(content[j] == '*' && content[j + 1] == '/')) {
        if (content[j] == '\n') ++end_line;
        ++j;
      }
      const size_t stop = (j + 1 < n) ? j + 2 : n;
      out.comments.push_back({start_line, content.substr(i, stop - i)});
      advance_over(stop - i);
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && peek(1) == '"') {
      size_t j = i + 2;
      std::string delim;
      while (j < n && content[j] != '(') delim += content[j++];
      const std::string closer = ")" + delim + "\"";
      size_t end = content.find(closer, j);
      end = (end == std::string::npos) ? n : end + closer.size();
      out.tokens.push_back({TokKind::kString, "<raw-string>", line});
      advance_over(end - i);
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      const int start_line = line;
      size_t j = i + 1;
      while (j < n && content[j] != quote) {
        if (content[j] == '\\' && j + 1 < n) ++j;
        if (content[j] == '\n') break;  // unterminated; don't run away
        ++j;
      }
      out.tokens.push_back(
          {quote == '"' ? TokKind::kString : TokKind::kChar,
           content.substr(i, j + 1 - i), start_line});
      advance_over(j + 1 - i > n - i ? n - i : j + 1 - i);
      continue;
    }
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(content[j])) ++j;
      out.tokens.push_back({TokKind::kIdent, content.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (IsIdentChar(content[j]) || content[j] == '.' ||
                       ((content[j] == '+' || content[j] == '-') && j > i &&
                        (content[j - 1] == 'e' || content[j - 1] == 'E')))) {
        ++j;
      }
      out.tokens.push_back({TokKind::kNumber, content.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Multi-char punctuation the parser relies on. Everything else is
    // emitted one character at a time ('<' and '>' stay single so template
    // argument scanning can balance them).
    static const char* kTwoChar[] = {"::", "->", "&&", "||", "==", "!=",
                                     "<=", ">=", "+=", "-=", "*=", "/=",
                                     "|=", "&=", "^=", "++", "--"};
    bool matched = false;
    for (const char* tc : kTwoChar) {
      if (c == tc[0] && peek(1) == tc[1]) {
        out.tokens.push_back({TokKind::kPunct, tc, line});
        i += 2;
        matched = true;
        break;
      }
    }
    if (matched) continue;
    out.tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
  return out;
}

}  // namespace streamline::analyzer
