#ifndef STREAMLINE_TOOLS_ANALYZER_LEX_H_
#define STREAMLINE_TOOLS_ANALYZER_LEX_H_

#include <string>
#include <vector>

namespace streamline::analyzer {

enum class TokKind { kIdent, kNumber, kString, kChar, kPunct };

struct Token {
  TokKind kind = TokKind::kPunct;
  std::string text;
  int line = 0;
};

struct Comment {
  int line = 0;  // line the comment starts on
  std::string text;
};

struct LexedFile {
  std::string path;
  std::vector<Token> tokens;
  std::vector<Comment> comments;
};

/// Tokenizes C++ source: skips (but records) comments, collapses string /
/// char / raw-string literals into single tokens, drops preprocessor
/// directives (including continuation lines), and merges multi-character
/// punctuation that matters structurally (::, ->, &&, ||, ==). '<' and '>'
/// stay single-character so template arguments can be brace-balanced.
LexedFile Lex(const std::string& path, const std::string& content);

}  // namespace streamline::analyzer

#endif  // STREAMLINE_TOOLS_ANALYZER_LEX_H_
