#include "model.h"

namespace streamline::analyzer {

void Program::BuildHierarchy() {
  subclasses.clear();
  // Direct edges base -> derived, then transitive closure.
  std::map<std::string, std::set<std::string>> direct;
  for (const auto& [name, cls] : classes) {
    for (const auto& base : cls.bases) direct[base].insert(name);
  }
  for (const auto& [base, _] : direct) {
    std::set<std::string>& out = subclasses[base];
    std::vector<std::string> work(direct[base].begin(), direct[base].end());
    while (!work.empty()) {
      std::string c = work.back();
      work.pop_back();
      if (!out.insert(c).second) continue;
      auto it = direct.find(c);
      if (it == direct.end()) continue;
      for (const auto& d : it->second) work.push_back(d);
    }
  }
}

bool Program::DerivesFrom(const std::string& cls,
                          const std::string& base) const {
  if (cls == base) return true;
  auto it = subclasses.find(base);
  return it != subclasses.end() && it->second.count(cls) > 0;
}

}  // namespace streamline::analyzer
