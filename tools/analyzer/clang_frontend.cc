// Clang libTooling frontend for streamline-analyzer (see clang_frontend.h).
//
// The extraction mirrors parse.cc fact-for-fact so the checks cannot tell
// the frontends apart: qualified function names are Class::Method without
// namespace qualifiers, wrapper templates (unique_ptr, vector, ...) unwrap
// to their first argument, lock scopes follow compound statements, and copy
// diagnostics use the same description strings. Where the AST knows more
// than the token shapes do (implicit copy constructors, desugared typedefs,
// overridden-method sets), this frontend uses the precise answer.

#include "clang_frontend.h"

#include <filesystem>
#include <memory>
#include <set>

#include "clang/AST/ASTConsumer.h"
#include "clang/AST/ASTContext.h"
#include "clang/AST/Decl.h"
#include "clang/AST/DeclCXX.h"
#include "clang/AST/Expr.h"
#include "clang/AST/ExprCXX.h"
#include "clang/AST/RecursiveASTVisitor.h"
#include "clang/AST/Stmt.h"
#include "clang/Basic/SourceManager.h"
#include "clang/Frontend/CompilerInstance.h"
#include "clang/Frontend/FrontendAction.h"
#include "clang/Tooling/CompilationDatabase.h"
#include "clang/Tooling/JSONCompilationDatabase.h"
#include "clang/Tooling/Tooling.h"

namespace streamline::analyzer {
namespace {

namespace fs = std::filesystem;

/// Wrapper templates that unwrap to their first template argument, matching
/// the structural frontend's Wrappers set.
bool IsWrapperTemplate(llvm::StringRef name) {
  return name == "unique_ptr" || name == "shared_ptr" || name == "vector" ||
         name == "deque" || name == "optional" || name == "atomic" ||
         name == "span" || name == "array" || name == "Result";
}

/// Unqualified record name of a type, with cv/ref/ptr stripped and wrapper
/// templates unwrapped ("std::vector<std::unique_ptr<Operator>>" ->
/// "Operator"). Empty for non-class types.
std::string UnwrapTypeIn(clang::ASTContext& ctx, clang::QualType qt) {
  for (int depth = 0; depth < 8; ++depth) {
    qt = qt.getNonReferenceType().getDesugaredType(ctx).getUnqualifiedType();
    if (qt->isPointerType()) {
      qt = qt->getPointeeType();
      continue;
    }
    const auto* spec = qt->getAs<clang::TemplateSpecializationType>();
    const clang::CXXRecordDecl* rd = qt->getAsCXXRecordDecl();
    if (rd != nullptr && IsWrapperTemplate(rd->getName())) {
      const auto* tsd =
          llvm::dyn_cast<clang::ClassTemplateSpecializationDecl>(rd);
      if (tsd != nullptr && tsd->getTemplateArgs().size() > 0 &&
          tsd->getTemplateArgs()[0].getKind() ==
              clang::TemplateArgument::Type) {
        qt = tsd->getTemplateArgs()[0].getAsType();
        continue;
      }
    } else if (spec != nullptr && spec->getNumArgs() > 0 &&
               spec->getArg(0).getKind() == clang::TemplateArgument::Type) {
      // Dependent / not-yet-instantiated wrapper spelling.
      clang::TemplateDecl* td = spec->getTemplateName().getAsTemplateDecl();
      if (td != nullptr && IsWrapperTemplate(td->getName())) {
        qt = spec->getArg(0).getAsType();
        continue;
      }
    }
    if (rd != nullptr) return rd->getNameAsString();
    return {};
  }
  return {};
}

/// Outermost-first member chain of an expression: `a[i]->b.Foo` yields
/// {"a", "b"} (the trailing member name is the callee, not the chain).
/// Returns false when the root is not a simple variable or implicit this.
bool ReceiverChainOf(const clang::Expr* e, std::vector<std::string>* chain) {
  chain->clear();
  std::vector<std::string> rev;
  const clang::Expr* cur = e;
  while (cur != nullptr) {
    cur = cur->IgnoreParenImpCasts();
    if (const auto* me = llvm::dyn_cast<clang::MemberExpr>(cur)) {
      rev.push_back(me->getMemberDecl()->getNameAsString());
      cur = me->getBase();
      continue;
    }
    if (const auto* ase = llvm::dyn_cast<clang::ArraySubscriptExpr>(cur)) {
      cur = ase->getBase();
      continue;
    }
    if (const auto* uo = llvm::dyn_cast<clang::UnaryOperator>(cur)) {
      if (uo->getOpcode() == clang::UO_Deref ||
          uo->getOpcode() == clang::UO_AddrOf) {
        cur = uo->getSubExpr();
        continue;
      }
      return false;
    }
    if (const auto* oc = llvm::dyn_cast<clang::CXXOperatorCallExpr>(cur)) {
      // smart_ptr::operator-> / operator* / operator[]
      if (oc->getNumArgs() >= 1) {
        cur = oc->getArg(0);
        continue;
      }
      return false;
    }
    if (const auto* dre = llvm::dyn_cast<clang::DeclRefExpr>(cur)) {
      rev.push_back(dre->getDecl()->getNameAsString());
      break;
    }
    if (llvm::isa<clang::CXXThisExpr>(cur)) break;  // implicit/explicit this
    return false;
  }
  chain->assign(rev.rbegin(), rev.rend());
  return true;
}

/// Head identifier of a plain lvalue argument ("record" for `record.key`),
/// empty for temporaries, moves, and computed values.
std::string LvalueHead(const clang::Expr* e, bool* conditional) {
  *conditional = false;
  e = e->IgnoreParenImpCasts();
  if (const auto* cond = llvm::dyn_cast<clang::ConditionalOperator>(e)) {
    // The broadcast idiom `last ? std::move(r) : r`: either branch being a
    // plain lvalue makes this a conditional copy.
    bool sub = false;
    std::string head = LvalueHead(cond->getTrueExpr(), &sub);
    if (head.empty()) head = LvalueHead(cond->getFalseExpr(), &sub);
    *conditional = !head.empty();
    return head;
  }
  if (const auto* ce = llvm::dyn_cast<clang::CallExpr>(e)) {
    (void)ce;  // std::move(...) and any other call: not a copy source
    return {};
  }
  if (const auto* ctor = llvm::dyn_cast<clang::CXXConstructExpr>(e)) {
    // Implicit copy construction materializing the argument.
    if (ctor->getNumArgs() == 1 && ctor->getConstructor()->isCopyConstructor()) {
      bool sub = false;
      return LvalueHead(ctor->getArg(0), &sub);
    }
    return {};
  }
  std::vector<std::string> chain;
  if (!ReceiverChainOf(e, &chain) || chain.empty()) return {};
  return chain.front();
}

SourceLoc LocOf(const clang::SourceManager& sm, clang::SourceLocation loc,
                const std::string& cwd) {
  const clang::PresumedLoc p = sm.getPresumedLoc(sm.getSpellingLoc(loc));
  SourceLoc out;
  if (p.isInvalid()) return out;
  out.file = p.getFilename();
  out.line = static_cast<int>(p.getLine());
  // Repo-relative paths keep diagnostics and waiver anchors identical to
  // the structural frontend's output.
  if (!cwd.empty() && out.file.rfind(cwd + "/", 0) == 0) {
    out.file = out.file.substr(cwd.size() + 1);
  }
  return out;
}

/// Statement walker for one function body: lock scopes, calls with held
/// locks, local types, range-for element origins, Record copy inits.
class BodyWalker {
 public:
  BodyWalker(clang::ASTContext& ctx, const std::string& cwd, FunctionInfo* fn)
      : ctx_(ctx), sm_(ctx.getSourceManager()), cwd_(cwd), fn_(fn) {}

  void Walk(const clang::Stmt* s) { WalkStmt(s); }

 private:
  void WalkStmt(const clang::Stmt* s) {
    if (s == nullptr) return;
    if (const auto* cs = llvm::dyn_cast<clang::CompoundStmt>(s)) {
      const size_t mark = active_.size();
      for (const clang::Stmt* child : cs->body()) WalkStmt(child);
      active_.resize(mark);  // RAII locks release at scope exit
      return;
    }
    if (const auto* ds = llvm::dyn_cast<clang::DeclStmt>(s)) {
      for (const clang::Decl* d : ds->decls()) {
        if (const auto* vd = llvm::dyn_cast<clang::VarDecl>(d)) HandleVar(vd);
      }
      return;
    }
    if (const auto* rf = llvm::dyn_cast<clang::CXXForRangeStmt>(s)) {
      const clang::VarDecl* var = rf->getLoopVariable();
      std::vector<std::string> chain;
      if (var != nullptr && rf->getRangeInit() != nullptr &&
          ReceiverChainOf(rf->getRangeInit(), &chain) && !chain.empty()) {
        fn_->local_elem_of[var->getNameAsString()] = chain;
      }
      WalkStmt(rf->getRangeInit());
      const size_t mark = active_.size();
      WalkStmt(rf->getBody());
      active_.resize(mark);
      return;
    }
    if (const auto* call = llvm::dyn_cast<clang::CallExpr>(s)) {
      HandleCall(call);
      // Fall through to children: nested calls in arguments still count.
    }
    for (const clang::Stmt* child : s->children()) WalkStmt(child);
  }

  void HandleVar(const clang::VarDecl* vd) {
    const std::string name = vd->getNameAsString();
    const std::string type = UnwrapTypeIn(ctx_, vd->getType());
    if (!type.empty()) fn_->local_types[name] = type;
    const clang::Expr* init = vd->getInit();
    if (type == "MutexLock" && init != nullptr) {
      // `MutexLock l(&mu_);` -- the guarded mutex is the ctor argument.
      const clang::Expr* arg = init->IgnoreParenImpCasts();
      if (const auto* ctor = llvm::dyn_cast<clang::CXXConstructExpr>(arg)) {
        if (ctor->getNumArgs() >= 1) arg = ctor->getArg(0);
      }
      LockAcquire acq;
      acq.loc = LocOf(sm_, vd->getLocation(), cwd_);
      ReceiverChainOf(arg, &acq.chain);
      acq.held_idx.assign(active_.begin(), active_.end());
      fn_->locks.push_back(std::move(acq));
      active_.push_back(static_cast<int>(fn_->locks.size()) - 1);
      return;
    }
    if ((type == "Record" || type == "Value") && init != nullptr) {
      const clang::Expr* e = init->IgnoreParenImpCasts();
      if (const auto* ctor = llvm::dyn_cast<clang::CXXConstructExpr>(e)) {
        if (ctor->getNumArgs() == 1 &&
            ctor->getConstructor()->isCopyConstructor()) {
          bool conditional = false;
          const std::string head =
              LvalueHead(ctor->getArg(0), &conditional);
          if (!head.empty()) {
            fn_->copies.push_back(
                {type + " copy-initialized from lvalue '" + head + "'",
                 LocOf(sm_, vd->getLocation(), cwd_)});
          }
        }
      }
    }
    if (init != nullptr) WalkStmt(init);
  }

  void HandleCall(const clang::CallExpr* call) {
    CallSite cs;
    cs.loc = LocOf(sm_, call->getExprLoc(), cwd_);
    cs.held_idx.assign(active_.begin(), active_.end());
    const clang::FunctionDecl* callee = call->getDirectCallee();
    if (callee == nullptr) {
      cs.indirect = true;  // function pointer / std::function
      cs.name = "<indirect>";
      fn_->calls.push_back(std::move(cs));
      return;
    }
    cs.name = callee->getNameAsString();
    if (const auto* method = llvm::dyn_cast<clang::CXXMethodDecl>(callee)) {
      // The AST already resolved the static target; record it as an
      // explicit qualifier so the resolver takes the precise edge (virtual
      // dispatch still fans out to overrides via the class hierarchy).
      cs.qualifier = method->getParent()->getNameAsString();
    } else if (const auto* ns = llvm::dyn_cast<clang::NamespaceDecl>(
                   callee->getDeclContext())) {
      cs.qualifier = ns->getNameAsString();
      // std::this_thread::sleep_for needs its full spelling for the
      // intrinsic matcher.
      if (const auto* outer = llvm::dyn_cast<clang::NamespaceDecl>(
              ns->getDeclContext())) {
        cs.qualifier = outer->getNameAsString() + "::" + cs.qualifier;
      }
    }
    const auto* mc = llvm::dyn_cast<clang::CXXMemberCallExpr>(call);
    if (mc != nullptr) {
      ReceiverChainOf(mc->getImplicitObjectArgument(), &cs.receiver_chain);
    }
    // "now" on system_clock is spelled via the qualifier in the matcher.
    if (const auto* rd =
            llvm::dyn_cast_or_null<clang::CXXRecordDecl>(
                callee->getDeclContext())) {
      if (rd->getName() == "system_clock") cs.qualifier = "system_clock";
    }
    for (const clang::Expr* arg : call->arguments()) {
      CallSite::Arg a;
      a.lvalue_head = LvalueHead(arg, &a.conditional);
      cs.args.push_back(std::move(a));
    }
    // Explicit Lock()/Unlock() pairs on a Mutex receiver.
    const std::string recv_type =
        (mc == nullptr || cs.receiver_chain.empty())
            ? std::string()
            : UnwrapTypeIn(ctx_,
                           mc->getImplicitObjectArgument()->getType());
    if (recv_type == "Mutex" && cs.name == "Lock") {
      LockAcquire acq;
      acq.loc = cs.loc;
      acq.chain = cs.receiver_chain;
      acq.held_idx.assign(active_.begin(), active_.end());
      fn_->locks.push_back(std::move(acq));
      active_.push_back(static_cast<int>(fn_->locks.size()) - 1);
    } else if (recv_type == "Mutex" && cs.name == "Unlock") {
      if (!active_.empty()) active_.pop_back();
    }
    fn_->calls.push_back(std::move(cs));
  }

  clang::ASTContext& ctx_;
  const clang::SourceManager& sm_;
  const std::string cwd_;
  FunctionInfo* fn_;
  std::vector<int> active_;  // indices into fn_->locks currently held
};

class Collector : public clang::RecursiveASTVisitor<Collector> {
 public:
  Collector(clang::ASTContext& ctx, const std::string& cwd, Program* prog)
      : ctx_(ctx), sm_(ctx.getSourceManager()), cwd_(cwd), prog_(prog) {}

  bool shouldVisitTemplateInstantiations() const { return false; }

  bool VisitCXXRecordDecl(clang::CXXRecordDecl* rd) {
    if (!rd->isCompleteDefinition() || rd->getName().empty()) return true;
    ClassInfo& info = prog_->classes[rd->getNameAsString()];
    info.name = rd->getNameAsString();
    info.loc = LocOf(sm_, rd->getLocation(), cwd_);
    for (const clang::CXXBaseSpecifier& base : rd->bases()) {
      if (const clang::CXXRecordDecl* bd = base.getType()->getAsCXXRecordDecl()) {
        info.bases.push_back(bd->getNameAsString());
      }
    }
    for (const clang::FieldDecl* field : rd->fields()) {
      const std::string t = UnwrapTypeIn(ctx_, field->getType());
      if (!t.empty()) info.member_types[field->getNameAsString()] = t;
    }
    for (const clang::CXXMethodDecl* m : rd->methods()) {
      if (!m->getDeclName().isIdentifier()) continue;
      info.method_names.insert(m->getNameAsString());
    }
    for (const clang::Decl* d : rd->decls()) {
      if (const auto* alias = llvm::dyn_cast<clang::TypeAliasDecl>(d)) {
        const std::string t =
            UnwrapTypeIn(ctx_, alias->getUnderlyingType());
        if (!t.empty()) info.aliases[alias->getNameAsString()] = t;
      }
    }
    return true;
  }

  bool VisitFunctionDecl(clang::FunctionDecl* fd) {
    if (!fd->doesThisDeclarationHaveABody() ||
        !fd->getDeclName().isIdentifier()) {
      return true;
    }
    std::string cls;
    bool is_override = false;
    if (const auto* method = llvm::dyn_cast<clang::CXXMethodDecl>(fd)) {
      cls = method->getParent()->getNameAsString();
      is_override = method->size_overridden_methods() > 0;
    }
    const std::string qn =
        cls.empty() ? fd->getNameAsString()
                    : cls + "::" + fd->getNameAsString();
    FunctionInfo& fn = prog_->functions[qn];
    const SourceLoc loc = LocOf(sm_, fd->getLocation(), cwd_);
    if (!fn.qualified_name.empty() && fn.loc == loc && !fn.calls.empty()) {
      return true;  // same definition re-parsed in another TU
    }
    fn.qualified_name = qn;
    fn.class_name = cls;
    fn.bare_name = fd->getNameAsString();
    fn.loc = loc;
    fn.is_override = fn.is_override || is_override;
    for (const clang::ParmVarDecl* p : fd->parameters()) {
      FunctionInfo::Param param;
      param.type = UnwrapTypeIn(ctx_, p->getType());
      const clang::QualType t = p->getType();
      param.by_value = !t->isReferenceType() && !t->isPointerType();
      fn.params.push_back(param);
      if (!param.type.empty()) {
        fn.local_types[p->getNameAsString()] = param.type;
      }
    }
    BodyWalker walker(ctx_, cwd_, &fn);
    walker.Walk(fd->getBody());
    return true;
  }

 private:
  clang::ASTContext& ctx_;
  const clang::SourceManager& sm_;
  const std::string cwd_;
  Program* prog_;
};

class CollectConsumer : public clang::ASTConsumer {
 public:
  CollectConsumer(const std::string& cwd, Program* prog)
      : cwd_(cwd), prog_(prog) {}
  void HandleTranslationUnit(clang::ASTContext& ctx) override {
    Collector collector(ctx, cwd_, prog_);
    collector.TraverseDecl(ctx.getTranslationUnitDecl());
  }

 private:
  const std::string cwd_;
  Program* prog_;
};

class CollectAction : public clang::ASTFrontendAction {
 public:
  CollectAction(const std::string& cwd, Program* prog)
      : cwd_(cwd), prog_(prog) {}
  std::unique_ptr<clang::ASTConsumer> CreateASTConsumer(
      clang::CompilerInstance&, llvm::StringRef) override {
    return std::make_unique<CollectConsumer>(cwd_, prog_);
  }

 private:
  const std::string cwd_;
  Program* prog_;
};

class CollectActionFactory : public clang::tooling::FrontendActionFactory {
 public:
  CollectActionFactory(const std::string& cwd, Program* prog)
      : cwd_(cwd), prog_(prog) {}
  std::unique_ptr<clang::FrontendAction> create() override {
    return std::make_unique<CollectAction>(cwd_, prog_);
  }

 private:
  const std::string cwd_;
  Program* prog_;
};

}  // namespace

bool ParseWithClang(const std::string& compdb,
                    const std::vector<std::string>& src_dirs, Program* prog,
                    std::string* error) {
  std::string load_error;
  std::unique_ptr<clang::tooling::JSONCompilationDatabase> db =
      clang::tooling::JSONCompilationDatabase::loadFromFile(
          compdb, load_error,
          clang::tooling::JSONCommandLineSyntax::AutoDetect);
  if (db == nullptr) {
    *error = "cannot load " + compdb + ": " + load_error;
    return false;
  }
  const std::string cwd = fs::current_path().generic_string();
  std::vector<std::string> tus;
  for (const std::string& f : db->getAllFiles()) {
    std::error_code ec;
    const std::string canon = fs::weakly_canonical(f, ec).generic_string();
    if (ec) continue;
    for (const std::string& dir : src_dirs) {
      const std::string d =
          fs::weakly_canonical(dir, ec).generic_string() + "/";
      if (!ec && canon.rfind(d, 0) == 0) {
        tus.push_back(f);
        break;
      }
    }
  }
  if (tus.empty()) {
    *error = "no translation units under the given --src dirs in " + compdb;
    return false;
  }
  clang::tooling::ClangTool tool(*db, tus);
  CollectActionFactory factory(cwd, prog);
  if (tool.run(&factory) != 0) {
    *error = "clang tooling reported errors (see stderr)";
    return false;
  }
  return true;
}

}  // namespace streamline::analyzer
