#include "parse.h"

#include <algorithm>
#include <cctype>
#include <set>

namespace streamline::analyzer {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "if",       "else",     "for",          "while",    "do",
      "switch",   "case",     "default",      "return",   "break",
      "continue", "goto",     "new",          "delete",   "throw",
      "try",      "catch",    "sizeof",       "alignof",  "decltype",
      "typeid",   "co_await", "co_yield",     "co_return"};
  return kw;
}

const std::set<std::string>& Specifiers() {
  static const std::set<std::string> kw = {
      "static",   "const",   "constexpr", "consteval", "constinit",
      "inline",   "mutable", "volatile",  "explicit",  "virtual",
      "typename", "extern",  "thread_local", "register", "noexcept",
      "override", "final",   "unsigned",  "signed",    "long",
      "short"};
  return kw;
}

/// Smart pointers / containers whose first template argument is the type
/// that matters for receiver resolution.
const std::set<std::string>& Wrappers() {
  static const std::set<std::string> w = {
      "unique_ptr", "shared_ptr", "weak_ptr", "vector", "deque", "array",
      "optional",   "span",       "Result",   "list",   "atomic"};
  return w;
}

bool IsIdent(const Token& t) { return t.kind == TokKind::kIdent; }
bool IsPunct(const Token& t, const char* p) {
  return t.kind == TokKind::kPunct && t.text == p;
}

struct TypeParse {
  std::string cls;     // unwrapped class name ("" if not a class-ish type)
  size_t next = 0;     // index just past the type expression
  bool ok = false;
};

/// Parses a type expression starting at `i`: qualified identifier chain with
/// balanced template arguments, then trailing cv / * / &. Unwraps the known
/// smart-pointer / container wrappers to their first template argument and
/// returns the last identifier of the resulting chain as the class name.
TypeParse ParseType(const std::vector<Token>& t, size_t i) {
  TypeParse out;
  // Leading specifiers.
  while (i < t.size() && IsIdent(t[i]) && Specifiers().count(t[i].text)) ++i;
  if (i >= t.size() || !IsIdent(t[i])) return out;
  std::string last = t[i].text;
  ++i;
  while (i < t.size()) {
    if (IsPunct(t[i], "::") && i + 1 < t.size() && IsIdent(t[i + 1])) {
      last = t[i + 1].text;
      i += 2;
      continue;
    }
    if (IsPunct(t[i], "<")) {
      // Balanced template argument list. If `last` is a wrapper, descend
      // into the first argument; otherwise skip the group.
      const size_t arg_start = i + 1;
      int depth = 1;
      size_t j = i + 1;
      while (j < t.size() && depth > 0) {
        if (IsPunct(t[j], "<")) ++depth;
        else if (IsPunct(t[j], ">")) --depth;
        ++j;
      }
      if (Wrappers().count(last)) {
        TypeParse inner = ParseType(t, arg_start);
        if (inner.ok && !inner.cls.empty()) last = inner.cls;
      }
      i = j;
      continue;
    }
    break;
  }
  // Trailing cv / ref / pointer.
  while (i < t.size() &&
         (IsPunct(t[i], "*") || IsPunct(t[i], "&") || IsPunct(t[i], "&&") ||
          (IsIdent(t[i]) && t[i].text == "const"))) {
    ++i;
  }
  out.cls = last;
  out.next = i;
  out.ok = true;
  return out;
}

/// Walks a member-access receiver chain *backwards* from the token before
/// the method name. `a[i]->b.Foo(` with Foo at index k: called with k-1
/// pointing at '.', returns {"a", "b"}. Elements that are themselves calls
/// are recorded as "name()" markers.
std::vector<std::string> WalkReceiverChain(const std::vector<Token>& t,
                                           size_t before_name) {
  std::vector<std::string> rev;
  size_t i = before_name;
  while (true) {
    if (!(IsPunct(t[i], ".") || IsPunct(t[i], "->"))) break;
    if (i == 0) break;
    size_t j = i - 1;
    // Skip trailing [index] groups and call parens on the receiver element.
    bool is_call = false;
    while (true) {
      if (IsPunct(t[j], "]")) {
        int depth = 1;
        while (j-- > 0 && depth > 0) {
          if (IsPunct(t[j], "]")) ++depth;
          else if (IsPunct(t[j], "[")) --depth;
        }
        if (j == static_cast<size_t>(-1)) return {};
        continue;
      }
      if (IsPunct(t[j], ")")) {
        int depth = 1;
        while (j-- > 0 && depth > 0) {
          if (IsPunct(t[j], ")")) ++depth;
          else if (IsPunct(t[j], "(")) --depth;
        }
        if (j == static_cast<size_t>(-1)) return {};
        is_call = true;
        continue;
      }
      break;
    }
    if (IsIdent(t[j])) {
      rev.push_back(is_call ? t[j].text + "()" : t[j].text);
      if (j == 0) break;
      i = j - 1;
      if (IsIdent(t[i]) && t[i].text == "this") break;
      continue;
    }
    if (IsIdent(t[j]) == false && (IsPunct(t[j], ")") || IsPunct(t[j], "]"))) {
      break;  // already consumed above; defensive
    }
    // `(*x).Foo` or `this->` handled loosely: give up on complex receivers.
    break;
  }
  std::reverse(rev.begin(), rev.end());
  return rev;
}

struct Parser {
  const LexedFile& file;
  Program* prog;
  const std::vector<Token>& t;

  explicit Parser(const LexedFile& f, Program* p)
      : file(f), prog(p), t(f.tokens) {}

  SourceLoc LocAt(size_t i) const {
    return {file.path, i < t.size() ? t[i].line : 0};
  }

  size_t SkipBalanced(size_t i, const char* open, const char* close) const {
    // `i` points at the opening token; returns index just past the close.
    int depth = 0;
    while (i < t.size()) {
      if (IsPunct(t[i], open)) ++depth;
      else if (IsPunct(t[i], close)) {
        if (--depth == 0) return i + 1;
      }
      ++i;
    }
    return i;
  }

  // ---------------------------------------------------------------------
  // Declaration scopes (namespace / class bodies / file scope)
  // ---------------------------------------------------------------------

  void ParseTopLevel() { ParseDeclScope("", nullptr, 0, t.size()); }

  /// Parses declarations in [begin, end). `cls` is the enclosing ClassInfo
  /// (nullptr at namespace scope).
  void ParseDeclScope(const std::string& ns, ClassInfo* cls, size_t begin,
                      size_t end) {
    std::vector<size_t> buf;  // token indices of the current declaration
    size_t i = begin;
    while (i < end) {
      const Token& tok = t[i];
      if (IsPunct(tok, ";")) {
        ProcessDecl(cls, buf);
        buf.clear();
        ++i;
        continue;
      }
      if (IsPunct(tok, ":") && cls != nullptr && buf.size() == 1 &&
          IsIdent(t[buf[0]]) &&
          (t[buf[0]].text == "public" || t[buf[0]].text == "private" ||
           t[buf[0]].text == "protected")) {
        buf.clear();  // access specifier
        ++i;
        continue;
      }
      if (IsPunct(tok, "}")) {
        return;  // caller consumes
      }
      if (IsPunct(tok, "{")) {
        const auto kind = ClassifyBrace(buf);
        switch (kind) {
          case BraceKind::kNamespace: {
            std::string name = LastIdentText(buf);
            if (name == "namespace") name = "";  // anonymous
            const size_t close = SkipBalanced(i, "{", "}");
            ParseDeclScope(ns.empty() ? name : ns + "::" + name, nullptr,
                           i + 1, close - 1);
            i = close;
            buf.clear();
            continue;
          }
          case BraceKind::kClass: {
            const size_t close = SkipBalanced(i, "{", "}");
            ParseClass(buf, i + 1, close - 1);
            i = close;
            // The trailing `;` (and possible variable name) is consumed by
            // the normal `;` handling with an empty-ish buffer.
            buf.clear();
            continue;
          }
          case BraceKind::kEnumOrSkip: {
            i = SkipBalanced(i, "{", "}");
            buf.clear();
            continue;
          }
          case BraceKind::kInitializer: {
            // Brace init inside a declaration: consume the group into the
            // buffer and keep collecting until ';'.
            const size_t close = SkipBalanced(i, "{", "}");
            for (size_t k = i; k < close; ++k) buf.push_back(k);
            i = close;
            continue;
          }
          case BraceKind::kCtorInitMember: {
            const size_t close = SkipBalanced(i, "{", "}");
            for (size_t k = i; k < close; ++k) buf.push_back(k);
            i = close;
            continue;
          }
          case BraceKind::kFunctionBody: {
            const size_t close = SkipBalanced(i, "{", "}");
            ParseFunction(cls, buf, i + 1, close - 1);
            i = close;
            buf.clear();
            continue;
          }
        }
      }
      if (IsPunct(tok, "(")) {
        // Consume balanced parens into the buffer in one go so nested
        // braces (lambdas in default args) don't confuse classification.
        const size_t close = SkipBalanced(i, "(", ")");
        for (size_t k = i; k < close; ++k) buf.push_back(k);
        i = close;
        continue;
      }
      if (IsIdent(tok) && tok.text == "template") {
        // Skip the template parameter list; keep "template" in the buffer
        // so ProcessDecl can ignore forward declarations.
        buf.push_back(i);
        ++i;
        if (i < end && IsPunct(t[i], "<")) {
          int depth = 0;
          while (i < end) {
            if (IsPunct(t[i], "<")) ++depth;
            else if (IsPunct(t[i], ">")) {
              if (--depth == 0) { ++i; break; }
            }
            ++i;
          }
        }
        continue;
      }
      buf.push_back(i);
      ++i;
    }
    ProcessDecl(cls, buf);
  }

  enum class BraceKind {
    kNamespace,
    kClass,
    kEnumOrSkip,
    kInitializer,
    kCtorInitMember,
    kFunctionBody,
  };

  std::string LastIdentText(const std::vector<size_t>& buf) const {
    for (size_t k = buf.size(); k-- > 0;) {
      if (IsIdent(t[buf[k]])) return t[buf[k]].text;
    }
    return "";
  }

  bool BufHasIdent(const std::vector<size_t>& buf, const char* s) const {
    for (size_t idx : buf) {
      if (IsIdent(t[idx]) && t[idx].text == s) return true;
    }
    return false;
  }

  BraceKind ClassifyBrace(const std::vector<size_t>& buf) const {
    if (buf.empty()) return BraceKind::kEnumOrSkip;  // bare block
    const std::string first = t[buf[0]].text;
    if (BufHasIdent(buf, "namespace")) return BraceKind::kNamespace;
    if (BufHasIdent(buf, "enum")) return BraceKind::kEnumOrSkip;
    if (first == "using" || BufHasIdent(buf, "typedef")) {
      return BraceKind::kInitializer;
    }
    const bool is_class =
        BufHasIdent(buf, "class") || BufHasIdent(buf, "struct") ||
        BufHasIdent(buf, "union");
    // `struct X {` is a class; but `struct X foo = {...}` (C style) is not
    // seen in this codebase, and function definitions never contain the
    // class keyword outside template headers (which were skipped).
    if (is_class && FindParamOpen(buf) == static_cast<size_t>(-1)) {
      return BraceKind::kClass;
    }
    // `= { ... }` initializer.
    for (size_t k = 0; k < buf.size(); ++k) {
      if (IsPunct(t[buf[k]], "=")) return BraceKind::kInitializer;
    }
    const size_t paren = FindParamOpen(buf);
    if (paren == static_cast<size_t>(-1)) {
      // No function signature: brace-init of a member/global
      // (`std::atomic<int> x{0};`) when preceded by an identifier,
      // otherwise an unknown block we skip.
      if (!buf.empty() && IsIdent(t[buf.back()])) {
        return BraceKind::kInitializer;
      }
      return BraceKind::kEnumOrSkip;
    }
    // Signature found. Constructor-initializer handling: a top-level ':'
    // after the parameter list means member initializers follow; a '{'
    // directly after an identifier is a member brace-init, one after ')'
    // or '}' is the body.
    if (CtorColonAfterParams(buf, paren)) {
      const Token& last = t[buf.back()];
      if (IsIdent(last)) return BraceKind::kCtorInitMember;
    }
    return BraceKind::kFunctionBody;
  }

  /// Index *into buf* of the '(' opening the parameter list: the first
  /// top-level '(' (outside template angles) preceded by an identifier or
  /// operator name. Returns (size_t)-1 when absent.
  size_t FindParamOpen(const std::vector<size_t>& buf) const {
    int angle = 0;
    for (size_t k = 0; k < buf.size(); ++k) {
      const Token& tok = t[buf[k]];
      if (IsPunct(tok, "<")) {
        // Heuristic: '<' after an identifier opens template args.
        if (k > 0 && IsIdent(t[buf[k - 1]]) &&
            t[buf[k - 1]].text != "operator" && !InExprPosition(buf, k)) {
          ++angle;
        }
        continue;
      }
      if (IsPunct(tok, ">")) {
        if (angle > 0) --angle;
        continue;
      }
      if (angle > 0) continue;
      if (IsPunct(tok, "(") && k > 0) {
        const Token& prev = t[buf[k - 1]];
        if (IsIdent(prev) && !Keywords().count(prev.text)) return k;
        // operator()( ... ) / operator<( ... ): prev is punct but an
        // 'operator' ident appears within 3 tokens back.
        for (size_t b = k; b-- > 0 && k - b <= 3;) {
          if (IsIdent(t[buf[b]]) && t[buf[b]].text == "operator") return k;
        }
      }
    }
    return static_cast<size_t>(-1);
  }

  bool InExprPosition(const std::vector<size_t>& buf, size_t k) const {
    // Rough guard so `a < b` in a default argument doesn't open an angle
    // scope: '<' directly following ')' / number is comparison.
    if (k == 0) return false;
    const Token& prev = t[buf[k - 1]];
    return prev.kind == TokKind::kNumber || IsPunct(prev, ")");
  }

  bool CtorColonAfterParams(const std::vector<size_t>& buf,
                            size_t paren) const {
    // Find close of the param list within buf, then look for top-level ':'.
    int depth = 0;
    size_t k = paren;
    for (; k < buf.size(); ++k) {
      if (IsPunct(t[buf[k]], "(")) ++depth;
      else if (IsPunct(t[buf[k]], ")")) {
        if (--depth == 0) { ++k; break; }
      }
    }
    for (; k < buf.size(); ++k) {
      if (IsPunct(t[buf[k]], "(")) { k = SkipInBuf(buf, k, "(", ")"); continue; }
      if (IsPunct(t[buf[k]], "{")) { k = SkipInBuf(buf, k, "{", "}"); continue; }
      if (IsPunct(t[buf[k]], ":")) return true;
    }
    return false;
  }

  size_t SkipInBuf(const std::vector<size_t>& buf, size_t k, const char* open,
                   const char* close) const {
    int depth = 0;
    for (; k < buf.size(); ++k) {
      if (IsPunct(t[buf[k]], open)) ++depth;
      else if (IsPunct(t[buf[k]], close)) {
        if (--depth == 0) return k;
      }
    }
    return k;
  }

  // ---------------------------------------------------------------------
  // Class parsing
  // ---------------------------------------------------------------------

  void ParseClass(const std::vector<size_t>& head, size_t begin, size_t end) {
    // Head: [template <...>] class/struct [MACRO(..)] Name [final]
    //       [: bases...]
    // Find the name: last identifier before the top-level ':' (base clause)
    // or end of head, skipping 'final'.
    size_t colon = head.size();
    int depth = 0;
    for (size_t k = 0; k < head.size(); ++k) {
      if (IsPunct(t[head[k]], "(")) ++depth;
      else if (IsPunct(t[head[k]], ")")) --depth;
      else if (depth == 0 && IsPunct(t[head[k]], ":")) { colon = k; break; }
    }
    std::string name;
    for (size_t k = colon; k-- > 0;) {
      if (IsIdent(t[head[k]]) && t[head[k]].text != "final") {
        name = t[head[k]].text;
        break;
      }
    }
    if (name.empty() || name == "class" || name == "struct") {
      // Anonymous struct/union: parse members into the void.
      ClassInfo scratch;
      ParseDeclScope("", &scratch, begin, end);
      return;
    }
    ClassInfo& info = prog->classes[name];
    if (info.name.empty()) {
      info.name = name;
      info.loc = LocAt(head.empty() ? begin : head[0]);
    }
    // Bases: after ':', comma-separated; skip access specifiers; take the
    // first identifier chain of each (its last pre-'<' component).
    if (colon < head.size()) {
      size_t k = colon + 1;
      while (k < head.size()) {
        while (k < head.size() && IsIdent(t[head[k]]) &&
               (t[head[k]].text == "public" || t[head[k]].text == "private" ||
                t[head[k]].text == "protected" ||
                t[head[k]].text == "virtual")) {
          ++k;
        }
        std::string base, last;
        int ang = 0;
        for (; k < head.size(); ++k) {
          const Token& tok = t[head[k]];
          if (IsPunct(tok, "<")) { ++ang; continue; }
          if (IsPunct(tok, ">")) { if (ang > 0) --ang; continue; }
          if (ang > 0) continue;
          if (IsPunct(tok, ",")) { ++k; break; }
          if (IsIdent(tok)) last = tok.text;
        }
        base = last;
        if (!base.empty()) info.bases.push_back(base);
        if (k >= head.size()) break;
      }
    }
    ParseDeclScope("", &info, begin, end);
  }

  // ---------------------------------------------------------------------
  // Simple declarations (members, aliases, method declarations)
  // ---------------------------------------------------------------------

  void ProcessDecl(ClassInfo* cls, const std::vector<size_t>& buf) {
    if (buf.empty()) return;
    const std::string first = t[buf[0]].text;
    if (first == "friend" || first == "template" || first == "typedef" ||
        first == "public" || first == "private" || first == "protected") {
      return;
    }
    if (first == "using") {
      // using X = Y<...>;
      if (buf.size() >= 3 && IsIdent(t[buf[1]]) && IsPunct(t[buf[2]], "=")) {
        std::vector<Token> rhs;
        for (size_t k = 3; k < buf.size(); ++k) rhs.push_back(t[buf[k]]);
        TypeParse tp = ParseType(rhs, 0);
        if (tp.ok && cls != nullptr) {
          cls->aliases[t[buf[1]].text] = tp.cls;
        }
      }
      return;
    }
    if (cls == nullptr) return;  // namespace-scope globals: not needed
    if (BufHasIdent(buf, "class") || BufHasIdent(buf, "struct") ||
        BufHasIdent(buf, "enum")) {
      return;  // forward declaration
    }
    // Method declaration? Signature paren present -> record name + return
    // type, no member variable.
    const size_t paren = FindParamOpen(buf);
    if (paren != static_cast<size_t>(-1) && paren > 0) {
      const std::string mname = t[buf[paren - 1]].text;
      cls->method_names.insert(mname);
      return;
    }
    // Member variable: Type name [MACRO(...)] [= init | {init}] ;
    std::vector<Token> toks;
    toks.reserve(buf.size());
    for (size_t idx : buf) toks.push_back(t[idx]);
    TypeParse tp = ParseType(toks, 0);
    if (!tp.ok || tp.next >= toks.size()) return;
    if (!IsIdent(toks[tp.next])) return;
    const std::string vname = toks[tp.next].text;
    if (Keywords().count(vname) || Specifiers().count(vname)) return;
    cls->member_types[vname] = tp.cls;
  }

  // ---------------------------------------------------------------------
  // Function definitions
  // ---------------------------------------------------------------------

  void ParseFunction(ClassInfo* cls, const std::vector<size_t>& head,
                     size_t begin, size_t end) {
    const size_t paren = FindParamOpen(head);
    if (paren == static_cast<size_t>(-1) || paren == 0) return;
    // Assemble the possibly-qualified name ending at head[paren-1]:
    // [~]Name, Qual::Name, Qual::~Name, operatorX.
    size_t k = paren - 1;
    std::string name = t[head[k]].text;
    if (name == "operator" || (k > 0 && IsIdent(t[head[k - 1]]) &&
                               t[head[k - 1]].text == "operator")) {
      // operator<=, operator(), ... normalize to "operator".
      name = "operator";
      while (k > 0 && !(IsIdent(t[head[k]]) && t[head[k]].text == "operator"))
        --k;
    }
    bool dtor = false;
    if (k > 0 && IsPunct(t[head[k - 1]], "~")) {
      dtor = true;
      --k;
    }
    std::vector<std::string> quals;
    while (k >= 2 && IsPunct(t[head[k - 1]], "::") && IsIdent(t[head[k - 2]])) {
      quals.insert(quals.begin(), t[head[k - 2]].text);
      k -= 2;
    }
    std::string class_name = cls ? cls->name : "";
    if (!quals.empty()) class_name = quals.back();
    if (dtor) name = "~" + name;
    std::string qualified =
        class_name.empty() ? name : class_name + "::" + name;

    FunctionInfo& fn = prog->functions[qualified];
    if (fn.qualified_name.empty()) {
      fn.qualified_name = qualified;
      fn.class_name = class_name;
      fn.bare_name = name;
      fn.loc = LocAt(head[paren]);
    }
    // Record the method on its class even when defined out of line in a
    // .cc file the header was also parsed from.
    if (!class_name.empty()) {
      prog->classes[class_name].method_names.insert(name);
      if (prog->classes[class_name].name.empty()) {
        prog->classes[class_name].name = class_name;
      }
    }
    // `override` among post-paren head tokens.
    for (size_t p = paren; p < head.size(); ++p) {
      if (IsIdent(t[head[p]]) && t[head[p]].text == "override") {
        fn.is_override = true;
      }
    }
    ParseParams(&fn, head, paren);
    // Constructor-init-list member names were folded into `head`; their
    // initializer expressions can contain calls but those run once at
    // construction -- outside morsel paths -- so we skip them.
    ParseBody(&fn, cls, begin, end);
  }

  void ParseParams(FunctionInfo* fn, const std::vector<size_t>& head,
                   size_t paren) {
    // Split the parameter list on top-level commas; each parameter is
    // Type name [= default].
    std::vector<Token> cur;
    int pdepth = 0, adepth = 0;
    auto flush = [&]() {
      if (cur.empty()) return;
      TypeParse tp = ParseType(cur, 0);
      if (tp.ok) {
        bool by_value = true;
        for (const Token& tok : cur) {
          if (IsPunct(tok, "&") || IsPunct(tok, "*") || IsPunct(tok, "&&")) {
            by_value = false;
            break;
          }
        }
        fn->params.push_back({tp.cls, by_value});
        if (tp.next < cur.size() && IsIdent(cur[tp.next])) {
          fn->local_types[cur[tp.next].text] = tp.cls;
        }
      }
      cur.clear();
    };
    for (size_t k = paren; k < head.size(); ++k) {
      const Token& tok = t[head[k]];
      if (IsPunct(tok, "(")) {
        if (++pdepth == 1) continue;
      } else if (IsPunct(tok, ")")) {
        if (--pdepth == 0) break;
      } else if (IsPunct(tok, "<")) {
        ++adepth;
      } else if (IsPunct(tok, ">")) {
        if (adepth > 0) --adepth;
      } else if (IsPunct(tok, ",") && pdepth == 1 && adepth == 0) {
        flush();
        continue;
      }
      if (pdepth >= 1) cur.push_back(tok);
    }
    flush();
  }

  // ---------------------------------------------------------------------
  // Function bodies
  // ---------------------------------------------------------------------

  struct HeldLock {
    int lock_index;                  // index into fn->locks
    std::vector<std::string> chain;  // for explicit-Unlock matching
    int depth;                       // brace depth at acquisition
    bool raii;                       // false for explicit .Lock()
  };

  void ParseBody(FunctionInfo* fn, ClassInfo* cls, size_t begin, size_t end) {
    std::vector<HeldLock> held;
    int depth = 0;
    bool stmt_start = true;
    auto held_indices = [&]() {
      std::vector<int> idx;
      for (const auto& h : held) idx.push_back(h.lock_index);
      return idx;
    };
    for (size_t i = begin; i < end; ++i) {
      const Token& tok = t[i];
      if (IsPunct(tok, "{")) {
        ++depth;
        stmt_start = true;
        continue;
      }
      if (IsPunct(tok, "}")) {
        --depth;
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [&](const HeldLock& h) {
                                    return h.raii && h.depth > depth;
                                  }),
                   held.end());
        stmt_start = true;
        continue;
      }
      if (IsPunct(tok, ";")) {
        stmt_start = true;
        continue;
      }
      if (!IsIdent(tok)) {
        if (IsPunct(tok, ")")) stmt_start = false;
        continue;
      }

      // --- Declarations at statement starts -------------------------------
      if (stmt_start || (i > begin && IsPunct(t[i - 1], "("))) {
        if (tok.text == "MutexLock" || tok.text == "ReaderMutexLock") {
          // MutexLock name(&expr);
          size_t j = i + 1;
          if (j < end && IsIdent(t[j]) && j + 1 < end &&
              IsPunct(t[j + 1], "(")) {
            std::vector<std::string> chain = LockChainAt(j + 2, end);
            if (!chain.empty()) {
              LockAcquire acq;
              acq.chain = chain;
              acq.loc = LocAt(i);
              acq.held_idx = held_indices();
              fn->locks.push_back(std::move(acq));
              held.push_back({static_cast<int>(fn->locks.size()) - 1,
                              std::move(chain), depth, true});
            }
            i = SkipBalanced(j + 1, "(", ")") - 1;
            stmt_start = false;
            continue;
          }
        }
        MaybeLocalDecl(fn, i, end);
      }

      // --- Calls ----------------------------------------------------------
      if (i + 1 < end && IsPunct(t[i + 1], "(") &&
          !Keywords().count(tok.text)) {
        RecordCall(fn, i, end, held_indices(), depth, &held);
      }
      stmt_start = false;
    }
    (void)cls;
  }

  /// Extracts the receiver chain of the mutex expression inside
  /// `MutexLock l(&...)`: `&workers_[i]->mu` -> {"workers_", "mu"}.
  std::vector<std::string> LockChainAt(size_t i, size_t end) {
    if (i >= end || !IsPunct(t[i], "&")) {
      // MutexLock l(LogMutex()) style: chain is the call marker.
      if (i < end && IsIdent(t[i])) return {t[i].text + "()"};
      return {};
    }
    ++i;
    std::vector<std::string> chain;
    while (i < end && !IsPunct(t[i], ")")) {
      if (IsIdent(t[i])) {
        chain.push_back(t[i].text);
      } else if (IsPunct(t[i], "(")) {
        i = SkipBalanced(i, "(", ")") - 1;
        if (!chain.empty()) chain.back() += "()";
      } else if (IsPunct(t[i], "[")) {
        i = SkipBalanced(i, "[", "]") - 1;
      } else if (!(IsPunct(t[i], ".") || IsPunct(t[i], "->") ||
                   IsPunct(t[i], "::"))) {
        break;
      }
      ++i;
    }
    if (chain.size() == 1 && chain[0] == "this") return {};
    return chain;
  }

  void MaybeLocalDecl(FunctionInfo* fn, size_t i, size_t end) {
    // Attempt `Type name [=(;{:,]` at a statement start. Conservative: the
    // first token must be an identifier that is not a known keyword.
    std::vector<Token> toks;
    for (size_t k = i; k < end && toks.size() < 24; ++k) {
      toks.push_back(t[k]);
      if (IsPunct(t[k], ";") || IsPunct(t[k], "{")) break;
    }
    if (toks.empty() || !IsIdent(toks[0])) return;
    if (Keywords().count(toks[0].text)) return;
    if (toks[0].text == "auto") {
      // Range-for over a typed container: `auto& op : ops` -- record the
      // container chain so the resolver can type `op` as its element.
      size_t k = 1;
      while (k < toks.size() &&
             (IsPunct(toks[k], "&") || IsPunct(toks[k], "*") ||
              IsPunct(toks[k], "&&") ||
              (IsIdent(toks[k]) && toks[k].text == "const"))) {
        ++k;
      }
      if (k + 1 < toks.size() && IsIdent(toks[k]) &&
          IsPunct(toks[k + 1], ":")) {
        const std::string vname = toks[k].text;
        std::vector<std::string> chain;
        for (size_t j = k + 2; j < toks.size(); ++j) {
          if (IsIdent(toks[j])) {
            chain.push_back(toks[j].text);
          } else if (IsPunct(toks[j], "(")) {
            if (!chain.empty()) chain.back() += "()";
            int d = 1;
            while (++j < toks.size() && d > 0) {
              if (IsPunct(toks[j], "(")) ++d;
              else if (IsPunct(toks[j], ")")) --d;
            }
            --j;
          } else if (IsPunct(toks[j], "[")) {
            int d = 1;
            while (++j < toks.size() && d > 0) {
              if (IsPunct(toks[j], "[")) ++d;
              else if (IsPunct(toks[j], "]")) --d;
            }
            --j;
          } else if (!(IsPunct(toks[j], ".") || IsPunct(toks[j], "->") ||
                       IsPunct(toks[j], "::"))) {
            break;
          }
        }
        if (!chain.empty()) fn->local_elem_of[vname] = std::move(chain);
      }
      return;  // element type resolved later; nothing else to record
    }
    TypeParse tp = ParseType(toks, 0);
    if (!tp.ok || tp.next >= toks.size()) return;
    if (!IsIdent(toks[tp.next])) return;
    const std::string vname = toks[tp.next].text;
    if (Keywords().count(vname)) return;
    if (tp.next + 1 >= toks.size()) return;
    const Token& after = toks[tp.next + 1];
    const bool decl_shape = IsPunct(after, "=") || IsPunct(after, ";") ||
                            IsPunct(after, "{") || IsPunct(after, "(") ||
                            IsPunct(after, ":") || IsPunct(after, ",");
    if (!decl_shape) return;
    fn->local_types[vname] = tp.cls;

    // Record copy detection: `Record r = lvalue;` / `Record r(lvalue);`
    // where the initializer is a plain lvalue chain (not a call result,
    // not std::move).
    if (tp.cls == "Record" || tp.cls == "Value") {
      if (IsPunct(after, "=") || IsPunct(after, "(")) {
        size_t j = tp.next + 2;
        if (j < toks.size() && InitIsLvalueCopy(toks, j)) {
          fn->copies.push_back(
              {tp.cls + " copy-initialized from lvalue '" +
                   InitHead(toks, j) + "'",
               {file.path, toks[0].line}});
        }
      }
    }
  }

  static bool InitIsLvalueCopy(const std::vector<Token>& toks, size_t j) {
    // lvalue chain: ident (. ident | -> ident | [..])* terminated by ; or ).
    if (j >= toks.size() || toks[j].kind != TokKind::kIdent) return false;
    if (toks[j].text == "std") return false;  // std::move / std::get / ...
    size_t k = j;
    bool expect_ident = true;
    int bracket = 0;
    for (; k < toks.size(); ++k) {
      const Token& tok = toks[k];
      if (bracket > 0) {
        if (IsPunct(tok, "]")) --bracket;
        else if (IsPunct(tok, "[")) ++bracket;
        continue;
      }
      if (IsPunct(tok, ";") || IsPunct(tok, ")")) return !expect_ident;
      if (IsPunct(tok, "[")) { ++bracket; continue; }
      if (expect_ident) {
        if (tok.kind != TokKind::kIdent) return false;
        expect_ident = false;
        continue;
      }
      if (IsPunct(tok, ".") || IsPunct(tok, "->")) {
        expect_ident = true;
        continue;
      }
      return false;  // '(', operators, etc: a computed value, not a copy
    }
    return false;
  }

  static std::string InitHead(const std::vector<Token>& toks, size_t j) {
    return j < toks.size() ? toks[j].text : "";
  }

  void RecordCall(FunctionInfo* fn, size_t name_idx, size_t end,
                  std::vector<int> held, int depth,
                  std::vector<HeldLock>* held_stack) {
    const std::string name = t[name_idx].text;
    CallSite cs;
    cs.name = name;
    cs.loc = LocAt(name_idx);
    cs.held_idx = std::move(held);
    // Explicit qualifier: A::B::name( -- walk back over :: pairs. A keyword
    // before the :: means a global-namespace call in statement position
    // (`return ::fsync(fd)`), not a qualifier.
    size_t k = name_idx;
    std::vector<std::string> quals;
    while (k >= 2 && IsPunct(t[k - 1], "::") && IsIdent(t[k - 2]) &&
           !Keywords().count(t[k - 2].text)) {
      quals.insert(quals.begin(), t[k - 2].text);
      k -= 2;
    }
    if (!quals.empty()) {
      std::string q;
      for (const auto& part : quals) q += (q.empty() ? "" : "::") + part;
      cs.qualifier = q;
    } else if (name_idx > 0 &&
               (IsPunct(t[name_idx - 1], ".") ||
                IsPunct(t[name_idx - 1], "->"))) {
      cs.receiver_chain = WalkReceiverChain(t, name_idx - 1);
    }
    // Indirect-call marker: calling a variable of function type.
    if (cs.qualifier.empty() && cs.receiver_chain.empty()) {
      auto it = fn->local_types.find(name);
      if (it != fn->local_types.end() &&
          (it->second == "function" || it->second == "Fn" ||
           it->second == "Runner")) {
        cs.indirect = true;
      }
    }
    // Explicit lock operations on mutexes: expr.Lock() / expr.Unlock().
    if ((name == "Lock" || name == "Unlock") && !cs.receiver_chain.empty()) {
      std::vector<std::string> chain = cs.receiver_chain;
      if (name == "Lock") {
        LockAcquire acq;
        acq.chain = chain;
        acq.loc = cs.loc;
        for (const auto& h : *held_stack) acq.held_idx.push_back(h.lock_index);
        fn->locks.push_back(std::move(acq));
        held_stack->push_back({static_cast<int>(fn->locks.size()) - 1,
                               std::move(chain), depth, false});
      } else {
        for (size_t h = held_stack->size(); h-- > 0;) {
          if ((*held_stack)[h].chain == chain) {
            held_stack->erase(held_stack->begin() + h);
            break;
          }
        }
      }
      return;  // lock ops are modeled as lock events, not calls
    }
    ExtractArgs(&cs, name_idx + 1, end);
    fn->calls.push_back(std::move(cs));
  }

  /// Splits the call's top-level arguments and classifies each as a plain
  /// lvalue chain (potential copy source), a ?:-with-lvalue-branch
  /// (conditional copy), or a computed value.
  void ExtractArgs(CallSite* cs, size_t open, size_t end) {
    std::vector<std::vector<Token>> arg_toks;
    std::vector<Token> cur;
    int pdepth = 0;
    for (size_t i = open; i < end; ++i) {
      const Token& tok = t[i];
      if (IsPunct(tok, "(") || IsPunct(tok, "[") || IsPunct(tok, "{")) {
        ++pdepth;
        if (pdepth == 1) continue;  // the call's own '('
      } else if (IsPunct(tok, ")") || IsPunct(tok, "]") ||
                 IsPunct(tok, "}")) {
        --pdepth;
        if (pdepth == 0) break;
      } else if (IsPunct(tok, ",") && pdepth == 1) {
        arg_toks.push_back(cur);
        cur.clear();
        continue;
      }
      if (pdepth >= 1) cur.push_back(tok);
    }
    if (!cur.empty()) arg_toks.push_back(cur);
    for (auto& a : arg_toks) {
      CallSite::Arg arg;
      // ?: with an lvalue tail: `last ? std::move(r) : r`.
      size_t tail = 0;
      bool ternary = false;
      int depth2 = 0;
      for (size_t k = 0; k < a.size(); ++k) {
        if (IsPunct(a[k], "(") || IsPunct(a[k], "[")) ++depth2;
        else if (IsPunct(a[k], ")") || IsPunct(a[k], "]")) --depth2;
        else if (depth2 == 0 && IsPunct(a[k], "?")) ternary = true;
        else if (depth2 == 0 && ternary && IsPunct(a[k], ":")) tail = k + 1;
      }
      std::vector<Token> slice(a.begin() + (ternary ? tail : 0), a.end());
      if (ternary && tail == 0) slice.clear();
      if (IsPlainLvalue(slice)) {
        arg.lvalue_head = slice.front().text;
        arg.conditional = ternary;
      }
      cs->args.push_back(std::move(arg));
    }
  }

  static bool IsPlainLvalue(const std::vector<Token>& toks) {
    if (toks.empty() || toks[0].kind != TokKind::kIdent) return false;
    if (toks[0].text == "std" || toks[0].text == "true" ||
        toks[0].text == "false" || toks[0].text == "nullptr") {
      return false;
    }
    bool expect_ident = true;
    int bracket = 0;
    for (const Token& tok : toks) {
      if (bracket > 0) {
        if (IsPunct(tok, "]")) --bracket;
        else if (IsPunct(tok, "[")) ++bracket;
        continue;
      }
      if (IsPunct(tok, "[")) { ++bracket; continue; }
      if (expect_ident) {
        if (tok.kind != TokKind::kIdent) return false;
        expect_ident = false;
        continue;
      }
      if (IsPunct(tok, ".") || IsPunct(tok, "->")) {
        expect_ident = true;
        continue;
      }
      return false;
    }
    return !expect_ident;
  }
};

}  // namespace

void ParseFile(const LexedFile& file, Program* prog) {
  Parser(file, prog).ParseTopLevel();
}

void CollectWaivers(const LexedFile& file, Program* prog) {
  for (const Comment& c : file.comments) {
    const std::string& s = c.text;
    size_t pos = 0;
    while ((pos = s.find("analyzer:allow(", pos)) != std::string::npos) {
      const size_t open = pos + std::string("analyzer:allow(").size();
      const size_t close = s.find(')', open);
      if (close == std::string::npos) break;
      Waiver w;
      w.check = s.substr(open, close - open);
      w.loc = {file.path, c.line};
      size_t r = close + 1;
      if (r < s.size() && s[r] == ':') {
        ++r;
        while (r < s.size() && std::isspace(static_cast<unsigned char>(s[r])))
          ++r;
        w.reason = s.substr(r);
        // Trim trailing whitespace / comment close.
        while (!w.reason.empty() &&
               (std::isspace(static_cast<unsigned char>(w.reason.back())) ||
                w.reason.back() == '/' || w.reason.back() == '*')) {
          w.reason.pop_back();
        }
      }
      prog->waivers.push_back(std::move(w));
      pos = close;
    }
  }
}

}  // namespace streamline::analyzer
