#!/usr/bin/env python3
"""Engine-invariant lints for the STREAMLINE source tree.

These are repo-specific rules that generic tooling (clang-tidy, compiler
warnings) cannot express. Each rule guards an invariant the engine's
performance or correctness story depends on:

  raw-mutex
      All locking goes through the annotated wrappers in
      src/common/mutex.h so Clang thread-safety analysis sees every
      critical section. Raw std::mutex / std::lock_guard /
      std::condition_variable anywhere else is invisible to the analysis.

  unordered-map-hot-path
      Hot-path files must use FlatHashMap (open addressing, no per-node
      allocation) instead of std::unordered_map for per-record lookups.

  record-copy-hot-path
      The data plane is allocation-free per record; Records moving through
      ProcessRecord/Emit chains must be moved, never copied. (Sinks taking
      `const Record&` copy deliberately -- they are outside the hot set.)

  snapshot-nondeterminism
      Snapshot/restore paths must be deterministic: no wall-clock reads, no
      ambient randomness. Monotonic steady_clock timeouts are fine.

  raw-thread
      Every OS thread in the engine is accounted for: workers and the
      timer belong to WorkStealingPool (src/common/thread_pool.cc), and
      thread-per-task mode's dedicated threads carry an explicit waiver.
      Constructing std::thread anywhere else reintroduces unaccounted
      thread-per-X execution, which is exactly what the morsel scheduler
      exists to prevent.

  unsynced-write
      Durability-path files (the WAL and the snapshot stores) must write
      through WalWriter or WriteFileDurable -- fd-based paths that fsync
      before a manifest may reference the bytes. A raw std::ofstream /
      fopen / fwrite there can lose acknowledged checkpoint data on a
      crash: the page cache acks the write long before the disk does.
      Reads (ifstream) are fine; only writes are durability-sensitive.

  virtual-per-record-loop
      The data plane executes batch-at-a-time: one ProcessBatch virtual
      call per operator hop per batch. A loop in a hot-path file that
      dispatches ProcessRecord/DeliverRecord/Emit per iteration reverts to
      per-record dispatch and silently undoes that; such loops must either
      move behind a ProcessBatch override or carry an explicit waiver
      (default fallbacks and the fault-injection path are the sanctioned
      cases).

Waivers: append `lint:allow(<rule>): <reason>` in a comment on the
offending line or the line directly above it. Waivers without a reason are
themselves an error.

Exit status: 0 clean, 1 violations, 2 usage/environment error.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO / "src"

# The sanctioned home of raw std::mutex primitives.
MUTEX_HOME = SRC / "common" / "mutex.h"

# The sanctioned home of raw std::thread: the work-stealing pool's workers
# and its timer thread.
THREAD_HOME = {SRC / "common" / "thread_pool.cc",
               SRC / "common" / "thread_pool.h"}

# Files on the per-record data path. Per-record lookups and copies here are
# what the paper's single-engine throughput claims rest on.
HOT_PATH_FILES = [
    SRC / "dataflow" / "executor.cc",
    SRC / "dataflow" / "operator.h",
    SRC / "dataflow" / "operators.h",
    SRC / "dataflow" / "operators.cc",
    SRC / "dataflow" / "window_operator.h",
    SRC / "dataflow" / "window_operator.cc",
    SRC / "dataflow" / "temporal_join.h",
    SRC / "dataflow" / "temporal_join.cc",
    SRC / "dataflow" / "events.h",
    SRC / "common" / "spsc_ring.h",
]

# Files on the snapshot/restore path, where nondeterminism breaks
# checkpoint reproducibility.
SNAPSHOT_PATH_PATTERNS = ["*snapshot*", "event_log.*"]

# Files whose writes must be durable before they are acknowledged: the WAL
# itself and the snapshot stores. Writes here go through WalWriter or
# WriteFileDurable (fd + fsync + rename); raw buffered writes are how
# acknowledged checkpoints get lost in a crash.
DURABILITY_PATH_FILES = [
    SRC / "common" / "wal.h",
    SRC / "common" / "wal.cc",
    SRC / "dataflow" / "snapshot.h",
    SRC / "dataflow" / "snapshot.cc",
]

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|"
    r"unique_lock|scoped_lock|condition_variable\w*)\b"
)
UNORDERED_MAP_RE = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b")
# Copy-initializing a Record from an lvalue, or handing a named record to
# Emit/push_back without std::move.
RECORD_COPY_RES = [
    re.compile(r"\bRecord\s+\w+\s*=\s*(?!std::move\b|MakeRecord\b|Record\b)"
               r"[A-Za-z_]\w*(\.\w+\(\))?\s*;"),
    re.compile(r"\b(Emit|push_back|emplace_back)\(\s*(record|rec)\s*\)"),
]
NONDETERMINISM_RE = re.compile(
    r"\bstd::chrono::system_clock\b|\bstd::random_device\b|"
    r"(?<![\w:])rand\s*\(|(?<![\w:_])time\s*\(\s*(NULL|nullptr|0)?\s*\)|"
    r"\blocaltime\b|\bgmtime\b"
)
WAIVER_RE = re.compile(r"lint:allow\(([\w-]+)\)(:\s*\S)?")
# std::thread construction or membership; deliberately does not match
# std::this_thread:: utilities (yield/sleep_for are fine anywhere).
RAW_THREAD_RE = re.compile(r"\bstd::thread\b(?!::)")
# Unsynced write primitives in durability code. ifstream (reads) is fine;
# ofstream, C stdio writes, and fstream opened for writing are not.
UNSYNCED_WRITE_RE = re.compile(
    r"\b(std::)?ofstream\b|\bstd::fstream\b|"
    r"\bfopen\s*\(|\bfwrite\s*\(|\bfputs\s*\(|\bfprintf\s*\(")

# Per-record dispatch inside a loop body. Detected in two parts because the
# loop header and the dispatch usually sit on different lines. Only loops
# that visibly iterate records/batches count; index loops over fields or
# subtasks are not per-record dispatch.
LOOP_HEADER_RE = re.compile(
    r"\b(for|while)\s*\(.*\b([Rr]ecords?|batch|event\.batch)\b")
PER_RECORD_DISPATCH_RE = re.compile(
    r"\b(ProcessRecord|DeliverRecord)\s*\(|->\s*Emit\s*\(")
# How many lines a loop header (and a waiver comment above it) may precede
# the dispatch call by and still be considered the same loop.
LOOP_WINDOW = 5


def scan_virtual_per_record_loops(path, violations):
    """Flags per-record dispatch calls within LOOP_WINDOW lines of a loop
    header. The waiver may sit on the call line or anywhere in the window
    above it (typically the comment right above the loop header)."""
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    rule = "virtual-per-record-loop"
    for i, line in enumerate(lines, 1):
        if not PER_RECORD_DISPATCH_RE.search(line):
            continue
        window = lines[max(0, i - 1 - LOOP_WINDOW):i]
        if not any(LOOP_HEADER_RE.search(w) for w in window):
            continue
        waiver = None
        for text in window + [line]:
            m = WAIVER_RE.search(text)
            if m and m.group(1) == rule:
                waiver = "waived" if m.group(2) else "missing-reason"
        if waiver == "waived":
            continue
        if waiver == "missing-reason":
            violations.append(
                (path, i, rule, "waiver has no reason: " + line.strip()))
            continue
        violations.append((path, i, rule, line.strip()))


def waived(rule, line, prev_line):
    for text in (line, prev_line):
        m = WAIVER_RE.search(text)
        if m and m.group(1) == rule:
            if not m.group(2):
                return "missing-reason"
            return "waived"
    return None


def scan_file(path, rules, violations):
    """rules: list of (rule_name, regex). Appends (path, lineno, rule, line)."""
    try:
        lines = path.read_text(encoding="utf-8").splitlines()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    prev = ""
    for i, line in enumerate(lines, 1):
        for rule, regex in rules:
            if not regex.search(line):
                continue
            w = waived(rule, line, prev)
            if w == "waived":
                continue
            if w == "missing-reason":
                violations.append(
                    (path, i, rule, "waiver has no reason: " + line.strip()))
                continue
            violations.append((path, i, rule, line.strip()))
        prev = line


def main():
    if not SRC.is_dir():
        print(f"error: {SRC} not found", file=sys.stderr)
        return 2

    violations = []

    for path in sorted(SRC.rglob("*")):
        if path.suffix not in (".h", ".cc", ".cpp", ".hpp"):
            continue
        rules = []
        if path != MUTEX_HOME:
            rules.append(("raw-mutex", RAW_MUTEX_RE))
        if path not in THREAD_HOME:
            rules.append(("raw-thread", RAW_THREAD_RE))
        scan_file(path, rules, violations)

    for path in HOT_PATH_FILES:
        if not path.is_file():
            print(f"error: hot-path file {path} missing (update the list)",
                  file=sys.stderr)
            return 2
        rules = [("unordered-map-hot-path", UNORDERED_MAP_RE)]
        rules += [("record-copy-hot-path", r) for r in RECORD_COPY_RES]
        scan_file(path, rules, violations)
        scan_virtual_per_record_loops(path, violations)

    for path in DURABILITY_PATH_FILES:
        if not path.is_file():
            print(f"error: durability-path file {path} missing (update the "
                  "list)", file=sys.stderr)
            return 2
        scan_file(path, [("unsynced-write", UNSYNCED_WRITE_RE)], violations)

    snapshot_files = set()
    for pattern in SNAPSHOT_PATH_PATTERNS:
        snapshot_files.update(SRC.rglob(pattern))
    for path in sorted(snapshot_files):
        if path.suffix not in (".h", ".cc", ".cpp", ".hpp"):
            continue
        scan_file(path, [("snapshot-nondeterminism", NONDETERMINISM_RE)],
                  violations)

    if violations:
        for path, lineno, rule, line in violations:
            rel = path.relative_to(REPO)
            print(f"{rel}:{lineno}: [{rule}] {line}")
        print(f"\n{len(violations)} invariant violation(s). Fix them or add "
              "'lint:allow(<rule>): <reason>' where the pattern is "
              "intentional.", file=sys.stderr)
        return 1
    print("engine invariants clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
