#!/usr/bin/env python3
"""Engine-invariant lints for the STREAMLINE source tree.

These are repo-specific rules that generic tooling (clang-tidy, compiler
warnings) cannot express. Each rule guards an invariant the engine's
performance or correctness story depends on:

  raw-mutex
      All locking goes through the annotated wrappers in
      src/common/mutex.h so Clang thread-safety analysis sees every
      critical section. Raw std::mutex / std::lock_guard /
      std::condition_variable anywhere else is invisible to the analysis.

  unordered-map-hot-path
      Hot-path files must use FlatHashMap (open addressing, no per-node
      allocation) instead of std::unordered_map for per-record lookups.

  record-copy-hot-path
      The data plane is allocation-free per record; Records moving through
      ProcessRecord/Emit chains must be moved, never copied. (Sinks taking
      `const Record&` copy deliberately -- they are outside the hot set.)

  snapshot-nondeterminism
      Snapshot/restore paths must be deterministic: no wall-clock reads, no
      ambient randomness. Monotonic steady_clock timeouts are fine.

  raw-thread
      Every OS thread in the engine is accounted for: workers and the
      timer belong to WorkStealingPool (src/common/thread_pool.cc), and
      thread-per-task mode's dedicated threads carry an explicit waiver.
      Constructing std::thread anywhere else reintroduces unaccounted
      thread-per-X execution, which is exactly what the morsel scheduler
      exists to prevent.

  raw-socket
      Socket creation is confined to src/net/: the network edge wraps
      every descriptor in an owning Fd, makes it non-blocking +
      close-on-exec, and keeps socket IO off the worker pool. A raw
      socket(2)/socketpair(2) call anywhere else reintroduces an
      unaccounted, blocking-by-default fd.

  unsynced-write
      Durability-path files (the WAL and the snapshot stores) must write
      through WalWriter or WriteFileDurable -- fd-based paths that fsync
      before a manifest may reference the bytes. A raw std::ofstream /
      fopen / fwrite there can lose acknowledged checkpoint data on a
      crash: the page cache acks the write long before the disk does.
      Reads (ifstream) are fine; only writes are durability-sensitive.

  virtual-per-record-loop
      The data plane executes batch-at-a-time: one ProcessBatch virtual
      call per operator hop per batch. A loop in a hot-path file that
      dispatches ProcessRecord/DeliverRecord/Emit per iteration reverts to
      per-record dispatch and silently undoes that; such loops must either
      move behind a ProcessBatch override or carry an explicit waiver
      (default fallbacks and the fault-injection path are the sanctioned
      cases).

Waivers: append `lint:allow(<rule>): <reason>` in a comment on the
offending line or the line directly above it. Waivers without a reason are
themselves an error, and so are stale waivers -- an allow comment that no
longer suppresses anything means the code it excused is gone, so the
comment must go too (or the rule regressed and the waiver is hiding it).

Usage: check_invariants.py [--list-waivers]

  --list-waivers   print every lint:allow comment in the tree (file, line,
                   rule, reason) and exit 0 without running the lints.

Exit status: 0 clean, 1 violations, 2 usage/environment error.
"""

import pathlib
import re
import sys

REPO = pathlib.Path(__file__).resolve().parents[2]
SRC = REPO / "src"

# The sanctioned home of raw std::mutex primitives.
MUTEX_HOME = SRC / "common" / "mutex.h"

# The sanctioned home of raw std::thread: the work-stealing pool's workers
# and its timer thread.
THREAD_HOME = {SRC / "common" / "thread_pool.cc",
               SRC / "common" / "thread_pool.h"}

# The sanctioned home of socket creation: the network edge.
NET_DIR = SRC / "net"

# Files on the per-record data path. Per-record lookups and copies here are
# what the paper's single-engine throughput claims rest on.
HOT_PATH_FILES = [
    SRC / "dataflow" / "executor.cc",
    SRC / "dataflow" / "operator.h",
    SRC / "dataflow" / "operators.h",
    SRC / "dataflow" / "operators.cc",
    SRC / "dataflow" / "window_operator.h",
    SRC / "dataflow" / "window_operator.cc",
    SRC / "dataflow" / "temporal_join.h",
    SRC / "dataflow" / "temporal_join.cc",
    SRC / "dataflow" / "events.h",
    SRC / "common" / "spsc_ring.h",
]

# Files on the snapshot/restore path, where nondeterminism breaks
# checkpoint reproducibility.
SNAPSHOT_PATH_PATTERNS = ["*snapshot*", "event_log.*"]

# Files whose writes must be durable before they are acknowledged: the WAL
# itself and the snapshot stores. Writes here go through WalWriter or
# WriteFileDurable (fd + fsync + rename); raw buffered writes are how
# acknowledged checkpoints get lost in a crash.
DURABILITY_PATH_FILES = [
    SRC / "common" / "wal.h",
    SRC / "common" / "wal.cc",
    SRC / "dataflow" / "snapshot.h",
    SRC / "dataflow" / "snapshot.cc",
]

RAW_MUTEX_RE = re.compile(
    r"\bstd::(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|"
    r"unique_lock|scoped_lock|condition_variable\w*)\b"
)
UNORDERED_MAP_RE = re.compile(r"\bstd::unordered_(map|set|multimap|multiset)\b")
# Copy-initializing a Record from an lvalue, or handing a named record to
# Emit/push_back without std::move.
RECORD_COPY_RES = [
    re.compile(r"\bRecord\s+\w+\s*=\s*(?!std::move\b|MakeRecord\b|Record\b)"
               r"[A-Za-z_]\w*(\.\w+\(\))?\s*;"),
    re.compile(r"\b(Emit|push_back|emplace_back)\(\s*(record|rec)\s*\)"),
]
NONDETERMINISM_RE = re.compile(
    r"\bstd::chrono::system_clock\b|\bstd::random_device\b|"
    r"(?<![\w:])rand\s*\(|(?<![\w:_])time\s*\(\s*(NULL|nullptr|0)?\s*\)|"
    r"\blocaltime\b|\bgmtime\b"
)
WAIVER_RE = re.compile(r"lint:allow\(([\w-]+)\)(:\s*\S)?")
# std::thread construction or membership; deliberately does not match
# std::this_thread:: utilities (yield/sleep_for are fine anywhere).
RAW_THREAD_RE = re.compile(r"\bstd::thread\b(?!::)")
# socket(2)/socketpair(2) creation calls; member access (x.socket()) and
# identifiers merely containing the word do not match.
RAW_SOCKET_RE = re.compile(r"(?<![\w.>])(socket|socketpair)\s*\(")
# Unsynced write primitives in durability code. ifstream (reads) is fine;
# ofstream, C stdio writes, and fstream opened for writing are not.
UNSYNCED_WRITE_RE = re.compile(
    r"\b(std::)?ofstream\b|\bstd::fstream\b|"
    r"\bfopen\s*\(|\bfwrite\s*\(|\bfputs\s*\(|\bfprintf\s*\(")

# Per-record dispatch inside a loop body. Detected in two parts because the
# loop header and the dispatch usually sit on different lines. Only loops
# that visibly iterate records/batches count; index loops over fields or
# subtasks are not per-record dispatch.
LOOP_HEADER_RE = re.compile(
    r"\b(for|while)\s*\(.*\b([Rr]ecords?|batch|event\.batch)\b")
PER_RECORD_DISPATCH_RE = re.compile(
    r"\b(ProcessRecord|DeliverRecord)\s*\(|->\s*Emit\s*\(")
# How many lines a loop header (and a waiver comment above it) may precede
# the dispatch call by and still be considered the same loop.
LOOP_WINDOW = 5


class WaiverRegistry:
    """Every lint:allow comment in the tree, with usage tracking: a waiver
    that suppresses nothing by the end of the run is stale and reported."""

    def __init__(self):
        # (path, lineno, rule) -> {"has_reason": bool, "used": bool}
        self.entries = {}

    def collect(self, path, lines):
        for i, line in enumerate(lines, 1):
            for m in WAIVER_RE.finditer(line):
                self.entries[(path, i, m.group(1))] = {
                    "has_reason": bool(m.group(2)), "used": False}

    def mark_used(self, path, lineno, rule):
        entry = self.entries.get((path, lineno, rule))
        if entry is not None:
            entry["used"] = True

    def stale(self):
        """Yields (path, lineno, rule) of never-used waivers; missing-reason
        waivers are reported at their violation site instead."""
        for (path, lineno, rule), entry in sorted(
                self.entries.items(), key=lambda kv: (str(kv[0][0]),) + kv[0][1:]):
            if not entry["used"] and entry["has_reason"]:
                yield path, lineno, rule


def read_lines(path):
    try:
        return path.read_text(encoding="utf-8").splitlines()
    except OSError as e:
        print(f"error: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def scan_virtual_per_record_loops(path, violations, registry):
    """Flags per-record dispatch calls within LOOP_WINDOW lines of a loop
    header. The waiver may sit on the call line or anywhere in the window
    above it (typically the comment right above the loop header)."""
    lines = read_lines(path)
    rule = "virtual-per-record-loop"
    for i, line in enumerate(lines, 1):
        if not PER_RECORD_DISPATCH_RE.search(line):
            continue
        start = max(0, i - 1 - LOOP_WINDOW)
        window = list(enumerate(lines[start:i], start + 1))
        if not any(LOOP_HEADER_RE.search(w) for _, w in window):
            continue
        waiver = None
        for lineno, text in window + [(i, line)]:
            m = WAIVER_RE.search(text)
            if m and m.group(1) == rule:
                registry.mark_used(path, lineno, rule)
                waiver = "waived" if m.group(2) else "missing-reason"
        if waiver == "waived":
            continue
        if waiver == "missing-reason":
            violations.append(
                (path, i, rule, "waiver has no reason: " + line.strip()))
            continue
        violations.append((path, i, rule, line.strip()))


def waived(rule, path, i, line, prev_line, registry):
    for lineno, text in ((i, line), (i - 1, prev_line)):
        m = WAIVER_RE.search(text)
        if m and m.group(1) == rule:
            registry.mark_used(path, lineno, rule)
            if not m.group(2):
                return "missing-reason"
            return "waived"
    return None


def scan_file(path, rules, violations, registry):
    """rules: list of (rule_name, regex). Appends (path, lineno, rule, line)."""
    lines = read_lines(path)
    prev = ""
    for i, line in enumerate(lines, 1):
        for rule, regex in rules:
            if not regex.search(line):
                continue
            w = waived(rule, path, i, line, prev, registry)
            if w == "waived":
                continue
            if w == "missing-reason":
                violations.append(
                    (path, i, rule, "waiver has no reason: " + line.strip()))
                continue
            violations.append((path, i, rule, line.strip()))
        prev = line


def main():
    list_waivers = False
    for arg in sys.argv[1:]:
        if arg == "--list-waivers":
            list_waivers = True
        else:
            print(f"error: unknown argument '{arg}'", file=sys.stderr)
            print(__doc__, file=sys.stderr)
            return 2
    if not SRC.is_dir():
        print(f"error: {SRC} not found", file=sys.stderr)
        return 2

    registry = WaiverRegistry()
    source_files = [p for p in sorted(SRC.rglob("*"))
                    if p.suffix in (".h", ".cc", ".cpp", ".hpp")]
    for path in source_files:
        registry.collect(path, read_lines(path))

    if list_waivers:
        for (path, lineno, rule), entry in sorted(
                registry.entries.items(),
                key=lambda kv: (str(kv[0][0]),) + kv[0][1:]):
            rel = path.relative_to(REPO)
            suffix = "" if entry["has_reason"] else "  [MISSING REASON]"
            print(f"{rel}:{lineno}: allow({rule}){suffix}")
        return 0

    violations = []

    for path in source_files:
        rules = []
        if path != MUTEX_HOME:
            rules.append(("raw-mutex", RAW_MUTEX_RE))
        if path not in THREAD_HOME:
            rules.append(("raw-thread", RAW_THREAD_RE))
        if NET_DIR not in path.parents:
            rules.append(("raw-socket", RAW_SOCKET_RE))
        scan_file(path, rules, violations, registry)

    for path in HOT_PATH_FILES:
        if not path.is_file():
            print(f"error: hot-path file {path} missing (update the list)",
                  file=sys.stderr)
            return 2
        rules = [("unordered-map-hot-path", UNORDERED_MAP_RE)]
        rules += [("record-copy-hot-path", r) for r in RECORD_COPY_RES]
        scan_file(path, rules, violations, registry)
        scan_virtual_per_record_loops(path, violations, registry)

    for path in DURABILITY_PATH_FILES:
        if not path.is_file():
            print(f"error: durability-path file {path} missing (update the "
                  "list)", file=sys.stderr)
            return 2
        scan_file(path, [("unsynced-write", UNSYNCED_WRITE_RE)], violations,
                  registry)

    snapshot_files = set()
    for pattern in SNAPSHOT_PATH_PATTERNS:
        snapshot_files.update(SRC.rglob(pattern))
    for path in sorted(snapshot_files):
        if path.suffix not in (".h", ".cc", ".cpp", ".hpp"):
            continue
        scan_file(path, [("snapshot-nondeterminism", NONDETERMINISM_RE)],
                  violations, registry)

    for path, lineno, rule in registry.stale():
        violations.append(
            (path, lineno, "stale-waiver",
             f"allow({rule}) no longer suppresses anything; remove it"))

    if violations:
        for path, lineno, rule, line in violations:
            rel = path.relative_to(REPO)
            print(f"{rel}:{lineno}: [{rule}] {line}")
        print(f"\n{len(violations)} invariant violation(s). Fix them or add "
              "'lint:allow(<rule>): <reason>' where the pattern is "
              "intentional.", file=sys.stderr)
        return 1
    print("engine invariants clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
