#ifndef STREAMLINE_BENCH_HARNESS_H_
#define STREAMLINE_BENCH_HARNESS_H_

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "common/metrics.h"

namespace streamline::bench {

/// Fixed-width table printer for paper-style result tables.
class Table {
 public:
  explicit Table(std::vector<std::string> columns)
      : columns_(std::move(columns)) {
    for (const auto& c : columns_) {
      widths_.push_back(std::max<size_t>(c.size(), 12));
    }
  }

  void AddRow(const std::vector<std::string>& cells) {
    rows_.push_back(cells);
    for (size_t i = 0; i < cells.size() && i < widths_.size(); ++i) {
      widths_[i] = std::max(widths_[i], cells[i].size());
    }
  }

  void Print() const {
    PrintRow(columns_);
    std::string sep;
    for (size_t i = 0; i < columns_.size(); ++i) {
      sep += std::string(widths_[i], '-');
      if (i + 1 < columns_.size()) sep += "  ";
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) PrintRow(row);
    std::printf("\n");
  }

 private:
  void PrintRow(const std::vector<std::string>& cells) const {
    std::string line;
    for (size_t i = 0; i < cells.size(); ++i) {
      std::string cell = cells[i];
      cell.resize(widths_[i], ' ');
      line += cell;
      if (i + 1 < cells.size()) line += "  ";
    }
    std::printf("%s\n", line.c_str());
  }

  std::vector<std::string> columns_;
  std::vector<size_t> widths_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  return buf;
}

/// Human-readable record rate.
inline std::string Rate(double records, double seconds) {
  const double rps = records / seconds;
  if (rps >= 1e6) return Fmt("%.2fM rec/s", rps / 1e6);
  if (rps >= 1e3) return Fmt("%.1fk rec/s", rps / 1e3);
  return Fmt("%.0f rec/s", rps);
}

inline std::string Count(double v) {
  if (v >= 1e6) return Fmt("%.2fM", v / 1e6);
  if (v >= 1e3) return Fmt("%.1fk", v / 1e3);
  return Fmt("%.0f", v);
}

inline std::string Bytes(uint64_t b) {
  if (b >= 1ull << 20) {
    return Fmt("%.2f MiB", static_cast<double>(b) / (1ull << 20));
  }
  if (b >= 1ull << 10) {
    return Fmt("%.1f KiB", static_cast<double>(b) / (1ull << 10));
  }
  return Fmt("%llu B", static_cast<unsigned long long>(b));
}

inline void Header(const std::string& title, const std::string& claim) {
  std::printf("================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Paper claim: %s\n", claim.c_str());
  std::printf("================================================================\n\n");
}

/// Machine-readable benchmark report: a flat JSON object written next to
/// the binary (e.g. BENCH_E5.json) so CI and regression tooling can track
/// throughput and latency without scraping the human tables.
class JsonReport {
 public:
  explicit JsonReport(std::string path) : path_(std::move(path)) {}

  void Add(const std::string& key, double value) {
    entries_.push_back({key, Fmt("%.6g", value)});
  }
  void Add(const std::string& key, uint64_t value) {
    entries_.push_back(
        {key, Fmt("%llu", static_cast<unsigned long long>(value))});
  }
  void AddString(const std::string& key, const std::string& value) {
    entries_.push_back({key, "\"" + value + "\""});
  }

  /// Writes the report; returns false (and says so on stdout) on IO error.
  bool Write() const {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::printf("(could not write %s)\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n");
    for (size_t i = 0; i < entries_.size(); ++i) {
      std::fprintf(f, "  \"%s\": %s%s\n", entries_[i].first.c_str(),
                   entries_[i].second.c_str(),
                   i + 1 < entries_.size() ? "," : "");
    }
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path_.c_str());
    return true;
  }

 private:
  std::string path_;
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Copies the `scheduler.*` gauges a finished scheduler-mode job exports
/// (worker count, where morsels ran, steal/park/wake totals) into `report`
/// under `prefix` -- e.g. prefix "keyed_w4_sched_" yields
/// "keyed_w4_sched_morsels_stolen". Call after Job::Run() and before the
/// job is destroyed.
inline void AddSchedulerGauges(JsonReport& report, const std::string& prefix,
                               MetricsRegistry* metrics) {
  static constexpr const char* kGauges[] = {
      "workers",  "morsels_local", "morsels_stolen", "morsels_injected",
      "steals",   "parks",         "wakeups",        "notifies"};
  for (const char* g : kGauges) {
    report.Add(prefix + g,
               metrics->GetGauge(std::string("scheduler.") + g)->value());
  }
}

}  // namespace streamline::bench

#endif  // STREAMLINE_BENCH_HARNESS_H_
