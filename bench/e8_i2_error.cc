// E8 -- I2's correctness/minimality: rendering error vs transferred points.
//
// Operationalizes: the aggregation "is proven to be correct and minimal in
// terms of transferred data" (STREAMLINE, Sec. 1). M4 reaches ~zero pixel
// error at <= 4 points per pixel column; samplers need far more points for
// far worse charts. Also ablates the zoom pyramid: answering a zoomed
// viewport from the multi-resolution store vs re-scanning raw data.

#include <memory>

#include "bench/harness.h"
#include "viz/pyramid.h"
#include "viz/raster.h"
#include "viz/reducers.h"
#include "workload/timeseries.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

constexpr int kW = 500;
constexpr int kH = 150;

void RunErrorTable(const std::vector<SeriesPoint>& raw, Timestamp t_end) {
  Table table({"reducer", "points sent", "vs 4/px budget", "pixel error"});
  const Duration col = t_end / kW;
  const auto [lo, hi] = ValueRange(raw);
  const Raster raw_raster = RasterizeSeries(raw, 0, t_end, lo, hi, kW, kH);

  std::vector<std::unique_ptr<SeriesReducer>> reducers;
  reducers.push_back(std::make_unique<M4Reducer>(col));
  reducers.push_back(std::make_unique<MinMaxReducer>(col));
  reducers.push_back(std::make_unique<PaaReducer>(col));
  const uint64_t m4_budget = 4 * kW;
  reducers.push_back(std::make_unique<EveryNthReducer>(
      raw.size() / m4_budget));
  reducers.push_back(std::make_unique<EveryNthReducer>(
      raw.size() / (4 * m4_budget)));
  reducers.push_back(std::make_unique<UniformSamplingReducer>(
      static_cast<double>(m4_budget) / static_cast<double>(raw.size())));

  for (auto& reducer : reducers) {
    for (const auto& p : raw) reducer->OnElement(p.t, p.v);
    reducer->OnWatermark(kMaxTimestamp);
    const Raster r =
        RasterizeSeries(reducer->output(), 0, t_end, lo, hi, kW, kH);
    table.AddRow(
        {reducer->Name(),
         bench::Count(static_cast<double>(reducer->points_transferred())),
         Fmt("%.2fx", static_cast<double>(reducer->points_transferred()) /
                          static_cast<double>(m4_budget)),
         Fmt("%.4f", Raster::PixelError(raw_raster, r))});
  }
  table.Print();
}

void RunPyramidAblation(const std::vector<SeriesPoint>& raw,
                        Timestamp t_end) {
  Table table({"zoom answer path", "viewport", "query time", "points"});
  M4Pyramid pyramid(t_end / (kW * 16), 8);
  for (const auto& p : raw) pyramid.OnElement(p.t, p.v);
  pyramid.Flush();

  const Timestamp zb = t_end / 4;
  const Timestamp ze = t_end / 2;
  // Pyramid path.
  {
    Stopwatch sw;
    std::vector<SeriesPoint> pts;
    for (int rep = 0; rep < 100; ++rep) {
      pts = pyramid.QuerySeries(zb, ze, kW);
    }
    table.AddRow({"multi-resolution pyramid", "zoom 4x",
                  Fmt("%.3f ms", sw.ElapsedMillis() / 100),
                  bench::Count(static_cast<double>(pts.size()))});
  }
  // Raw re-scan path (what a client without the pyramid pays).
  {
    Stopwatch sw;
    std::vector<SeriesPoint> pts;
    for (int rep = 0; rep < 100; ++rep) {
      std::vector<SeriesPoint> in_range;
      for (const auto& p : raw) {
        if (p.t >= zb && p.t < ze) in_range.push_back(p);
      }
      pts.clear();
      for (const auto& c : M4Aggregate(in_range, zb, ze, kW)) {
        for (const auto& p : c.Points()) pts.push_back(p);
      }
    }
    table.AddRow({"raw re-scan + batch M4", "zoom 4x",
                  Fmt("%.3f ms", sw.ElapsedMillis() / 100),
                  bench::Count(static_cast<double>(pts.size()))});
  }
  table.Print();
}

void Run() {
  bench::Header(
      "E8: rendering error vs transferred points; zoom-path ablation",
      "M4 is correct (near-zero pixel error) and minimal (<= 4 points per "
      "pixel column); samplers with bigger budgets still render worse");

  SeasonalSensorSeries sensor(
      RateShape{20'000.0, 0.3},
      SeasonalSensorSeries::Options{.spike_probability = 0.0005}, 41);
  auto raw = sensor.Take(1'200'000);
  // Align the span to the raster grid (1 column == 1 pixel).
  const Duration col = (raw.back().t + kW) / kW;
  const Timestamp t_end = col * kW;

  RunErrorTable(raw, t_end);
  RunPyramidAblation(raw, t_end);
}

}  // namespace
}  // namespace streamline

int main() {
  streamline::Run();
  return 0;
}
