// E2 -- multi-query aggregate sharing.
//
// Operationalizes: "Cutty is also suitable for multi query aggregation
// sharing" (STREAMLINE, Sec. 1). N concurrent sliding-window SUM queries
// with randomized ranges/slides share one aggregator; Cutty does one
// partial update per record regardless of N, per-query techniques degrade
// roughly linearly in N.
//
// Second tier: the standing-query data plane. Queries attach to and detach
// from a *hot* shared aggregator (the mechanism behind QueryRegistry):
// per-attach latency and steady/churn throughput at 100 / 1k / 10k
// resident queries, against the eager per-query baseline at the same
// query count.
//
// Results: human tables on stdout + machine-readable BENCH_E2.json.
// Usage: e2_cutty_multi_query [records [max_registry_queries [seed]]]
// (seed also via STREAMLINE_BENCH_SEED; argv wins).

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "agg/techniques.h"
#include "bench/harness.h"
#include "common/random.h"
#include "window/aggregate_fn.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

uint64_t g_base_records = 1'000'000;
uint64_t g_max_registry_queries = 10'000;
uint64_t g_seed = 99;

std::vector<std::pair<Duration, Duration>> MakeQuerySet(size_t n,
                                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Duration, Duration>> out;
  for (size_t i = 0; i < n; ++i) {
    // Slides 1-10 s, ranges 2-20 slides (max range 200 s, well under the
    // 1000 s stream so even buffer-and-recompute reaches steady state).
    const Duration slide = static_cast<Duration>(
        1000 * (1 + rng.NextBelow(10)));
    const Duration range = slide * static_cast<Duration>(
        2 + rng.NextBelow(19));
    out.emplace_back(range, slide);
  }
  return out;
}

/// Mean open windows per record over the query set: each (range, slide)
/// query keeps range/slide windows open at any instant. This is the
/// per-record combine factor the eager/naive baselines pay.
double MeanOverlap(const std::vector<std::pair<Duration, Duration>>& qs) {
  double sum = 0;
  for (auto [range, slide] : qs) {
    sum += static_cast<double>(range) / static_cast<double>(slide);
  }
  return qs.empty() ? 0 : sum / static_cast<double>(qs.size());
}

struct RunResult {
  double seconds = 0;
  uint64_t records = 0;
  AggStats stats;
};

RunResult RunOne(AggTechnique technique, size_t num_queries) {
  auto agg = MakeAggregator<SumAgg<double>>(technique);
  uint64_t fired = 0;
  const auto queries = MakeQuerySet(num_queries, g_seed);
  for (auto [range, slide] : queries) {
    agg->AddQuery(std::make_unique<SlidingWindowFn>(range, slide),
                  [&fired](size_t, const Window&, const double&) { ++fired; });
  }
  uint64_t n = g_base_records;
  if (technique == AggTechnique::kEager || technique == AggTechnique::kNaive) {
    // Cap total combine work using the set's measured overlap, but stay
    // past the largest range (200 s) so the baseline is in steady state.
    const double overlap = std::max(1.0, MeanOverlap(queries));
    n = std::min<uint64_t>(
        n, static_cast<uint64_t>(300'000'000 / (overlap * num_queries)));
    n = std::max<uint64_t>(n, 250'000);
  }
  Rng rng(5);
  RunResult out;
  out.records = n;
  Stopwatch sw;
  for (uint64_t i = 0; i < n; ++i) {
    agg->OnElement(static_cast<Timestamp>(i), rng.NextDouble());
  }
  out.seconds = sw.ElapsedSeconds();
  out.stats = agg->stats();
  return out;
}

void RunTechniqueSweep(bench::JsonReport* report) {
  const size_t query_counts[] = {1, 4, 16, 64, 256};
  const AggTechnique techniques[] = {
      AggTechnique::kCutty, AggTechnique::kPairs, AggTechnique::kPanes,
      AggTechnique::kEager, AggTechnique::kNaive,
  };

  std::printf("Query set: mean overlap %.1f windows/record (seed %llu)\n\n",
              MeanOverlap(MakeQuerySet(256, g_seed)),
              static_cast<unsigned long long>(g_seed));
  Table table({"queries", "technique", "throughput", "aggs/record",
               "slices", "peak stored"});
  for (size_t q : query_counts) {
    for (AggTechnique t : techniques) {
      const RunResult r = RunOne(t, q);
      const double rps = static_cast<double>(r.records) / r.seconds;
      table.AddRow({Fmt("%zu", q), std::string(AggTechniqueToString(t)),
                    bench::Rate(static_cast<double>(r.records), r.seconds),
                    Fmt("%.2f", r.stats.OpsPerRecord()),
                    bench::Count(static_cast<double>(r.stats.slices_created)),
                    bench::Count(static_cast<double>(r.stats.peak_stored))});
      report->Add(Fmt("%s_q%zu_rps",
                      std::string(AggTechniqueToString(t)).c_str(), q),
                  rps);
    }
  }
  table.Print();
}

void RunFastPathAblation() {
  std::printf("Ablation: slicer boundary fast-path (cutty, shared store)\n\n");
  const size_t query_counts[] = {1, 4, 16, 64, 256};
  Table ablation({"queries", "fast-path", "throughput"});
  for (size_t q : query_counts) {
    for (bool disable : {false, true}) {
      SlicingAggregator<SumAgg<double>>::Options opt;
      opt.disable_wakeup_fastpath = disable;
      SlicingAggregator<SumAgg<double>> agg(SumAgg<double>(), opt);
      for (auto [range, slide] : MakeQuerySet(q, g_seed)) {
        agg.AddQuery(std::make_unique<SlidingWindowFn>(range, slide),
                     nullptr);
      }
      const uint64_t n = disable && q >= 64 ? g_base_records / 8
                                            : g_base_records;
      Rng rng(5);
      Stopwatch sw;
      for (uint64_t i = 0; i < n; ++i) {
        agg.OnElement(static_cast<Timestamp>(i), rng.NextDouble());
      }
      const double secs = sw.ElapsedSeconds();
      ablation.AddRow({Fmt("%zu", q), disable ? "off" : "on",
                       bench::Rate(static_cast<double>(n), secs)});
    }
  }
  ablation.Print();
}

// ---------------------------------------------------------------------------
// Standing-query tier: attach/detach on a hot aggregator.

struct RegistryTierResult {
  double attach_total_s = 0;
  double attach_max_s = 0;
  double steady_rps = 0;
  double churn_rps = 0;
  uint64_t fired = 0;
};

RegistryTierResult RunRegistryTier(size_t num_queries) {
  SlicingAggregator<SumAgg<double>> agg((SumAgg<double>()));
  uint64_t fired = 0;
  const auto queries = MakeQuerySet(num_queries, g_seed);
  Rng rng(5);
  Timestamp ts = 0;

  // Warm the aggregator with one resident query so every attach below is
  // a splice into live slice state, not a first-query fast path.
  (void)agg.AddQuery(std::make_unique<SlidingWindowFn>(10'000, 1'000),
                     [&fired](size_t, const Window&, const double&) {
                       ++fired;
                     });
  for (uint64_t i = 0; i < 50'000; ++i) {
    agg.OnElement(ts++, rng.NextDouble());
  }

  RegistryTierResult out;
  // Attach latency: splice each query in mid-stream, records flowing
  // between attaches (16 records apart, like a live job's watermark
  // cadence).
  std::vector<size_t> slots;
  slots.reserve(queries.size());
  for (auto [range, slide] : queries) {
    Stopwatch attach_sw;
    slots.push_back(agg.AttachQuery(
        std::make_unique<SlidingWindowFn>(range, slide),
        [&fired](size_t, const Window&, const double&) { ++fired; }));
    const double s = attach_sw.ElapsedSeconds();
    out.attach_total_s += s;
    out.attach_max_s = std::max(out.attach_max_s, s);
    for (int i = 0; i < 16; ++i) agg.OnElement(ts++, rng.NextDouble());
  }

  // Steady throughput with all queries resident.
  const uint64_t steady_n = num_queries >= 10'000 ? g_base_records / 4
                                                  : g_base_records;
  {
    Stopwatch sw;
    for (uint64_t i = 0; i < steady_n; ++i) {
      agg.OnElement(ts++, rng.NextDouble());
    }
    out.steady_rps = static_cast<double>(steady_n) / sw.ElapsedSeconds();
  }

  // Churn: detach the oldest standing query and attach a fresh one every
  // 10k records; the clock includes the attach/detach work.
  {
    const uint64_t churn_n = steady_n / 2;
    size_t next = 0;
    Rng shape_rng(g_seed + 1);
    Stopwatch sw;
    for (uint64_t i = 0; i < churn_n; ++i) {
      if (i % 10'000 == 0 && !slots.empty()) {
        (void)agg.DetachQuery(slots[next % slots.size()]);
        const Duration slide = static_cast<Duration>(
            1000 * (1 + shape_rng.NextBelow(10)));
        const Duration range = slide * static_cast<Duration>(
            2 + shape_rng.NextBelow(19));
        slots[next % slots.size()] = agg.AttachQuery(
            std::make_unique<SlidingWindowFn>(range, slide),
            [&fired](size_t, const Window&, const double&) { ++fired; });
        ++next;
      }
      agg.OnElement(ts++, rng.NextDouble());
    }
    out.churn_rps = static_cast<double>(churn_n) / sw.ElapsedSeconds();
  }
  out.fired = fired;
  return out;
}

/// Eager baseline at the same query count, capped total work. The cap cuts
/// the run short of full window build-up, which *overstates* the baseline
/// rate -- conservative for the sharing speedup reported against it.
double RunEagerBaseline(size_t num_queries) {
  auto agg = MakeAggregator<SumAgg<double>>(AggTechnique::kEager);
  uint64_t fired = 0;
  const auto queries = MakeQuerySet(num_queries, g_seed);
  for (auto [range, slide] : queries) {
    agg->AddQuery(std::make_unique<SlidingWindowFn>(range, slide),
                  [&fired](size_t, const Window&, const double&) { ++fired; });
  }
  const double overlap = std::max(1.0, MeanOverlap(queries));
  const uint64_t n = std::max<uint64_t>(
      1'000, static_cast<uint64_t>(
                 200'000'000 / (overlap * static_cast<double>(num_queries))));
  Rng rng(5);
  Stopwatch sw;
  for (uint64_t i = 0; i < n; ++i) {
    agg->OnElement(static_cast<Timestamp>(i), rng.NextDouble());
  }
  return static_cast<double>(n) / sw.ElapsedSeconds();
}

void RunRegistrySweep(bench::JsonReport* report) {
  std::printf(
      "Standing queries: attach/detach on a hot shared aggregator\n\n");
  Table table({"queries", "attach mean", "attach max", "steady",
               "churn", "eager baseline", "speedup"});
  for (size_t q : {size_t{100}, size_t{1'000}, size_t{10'000}}) {
    if (q > g_max_registry_queries) continue;
    const RegistryTierResult r = RunRegistryTier(q);
    const double eager_rps = RunEagerBaseline(q);
    const double attach_mean_us =
        r.attach_total_s / static_cast<double>(q) * 1e6;
    const double speedup = r.steady_rps / eager_rps;
    table.AddRow({Fmt("%zu", q), Fmt("%.1f us", attach_mean_us),
                  Fmt("%.0f us", r.attach_max_s * 1e6),
                  bench::Rate(r.steady_rps, 1.0),
                  bench::Rate(r.churn_rps, 1.0),
                  bench::Rate(eager_rps, 1.0), Fmt("%.1fx", speedup)});
    report->Add(Fmt("registry_q%zu_attach_mean_us", q), attach_mean_us);
    report->Add(Fmt("registry_q%zu_attach_max_us", q), r.attach_max_s * 1e6);
    report->Add(Fmt("registry_q%zu_steady_rps", q), r.steady_rps);
    report->Add(Fmt("registry_q%zu_churn_rps", q), r.churn_rps);
    report->Add(Fmt("registry_q%zu_eager_rps", q), eager_rps);
    report->Add(Fmt("registry_q%zu_speedup_vs_eager", q), speedup);
  }
  table.Print();
}

void Run() {
  bench::Header(
      "E2: N concurrent sliding-window SUM queries, shared aggregation",
      "Cutty is suitable for multi-query aggregation sharing: per-record "
      "cost stays ~constant in the number of queries");

  bench::JsonReport report("BENCH_E2.json");
  report.AddString("bench", "e2_cutty_multi_query");
  report.Add("seed", g_seed);
  report.Add("base_records", g_base_records);

  RunTechniqueSweep(&report);
  RunFastPathAblation();
  RunRegistrySweep(&report);
  report.Write();
}

}  // namespace
}  // namespace streamline

int main(int argc, char** argv) {
  if (const char* env = std::getenv("STREAMLINE_BENCH_SEED")) {
    streamline::g_seed = std::strtoull(env, nullptr, 10);
  }
  if (argc > 1) {
    streamline::g_base_records = std::strtoull(argv[1], nullptr, 10);
  }
  if (argc > 2) {
    streamline::g_max_registry_queries = std::strtoull(argv[2], nullptr, 10);
  }
  if (argc > 3) streamline::g_seed = std::strtoull(argv[3], nullptr, 10);
  streamline::Run();
  return 0;
}
