// E2 -- multi-query aggregate sharing.
//
// Operationalizes: "Cutty is also suitable for multi query aggregation
// sharing" (STREAMLINE, Sec. 1). N concurrent sliding-window SUM queries
// with randomized ranges/slides share one aggregator; Cutty does one
// partial update per record regardless of N, per-query techniques degrade
// roughly linearly in N.

#include <memory>

#include "agg/techniques.h"
#include "bench/harness.h"
#include "common/random.h"
#include "window/aggregate_fn.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

constexpr uint64_t kBaseRecords = 1'000'000;

std::vector<std::pair<Duration, Duration>> MakeQuerySet(size_t n,
                                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<std::pair<Duration, Duration>> out;
  for (size_t i = 0; i < n; ++i) {
    // Slides 1-10 s, ranges 2-20 slides (max range 200 s, well under the
    // 1000 s stream so even buffer-and-recompute reaches steady state).
    const Duration slide = static_cast<Duration>(
        1000 * (1 + rng.NextBelow(10)));
    const Duration range = slide * static_cast<Duration>(
        2 + rng.NextBelow(19));
    out.emplace_back(range, slide);
  }
  return out;
}

struct RunResult {
  double seconds = 0;
  uint64_t records = 0;
  AggStats stats;
};

RunResult RunOne(AggTechnique technique, size_t num_queries) {
  auto agg = MakeAggregator<SumAgg<double>>(technique);
  uint64_t fired = 0;
  for (auto [range, slide] : MakeQuerySet(num_queries, 99)) {
    agg->AddQuery(std::make_unique<SlidingWindowFn>(range, slide),
                  [&fired](size_t, const Window&, const double&) { ++fired; });
  }
  // Mean overlap of the query set is ~11 windows per query.
  uint64_t n = kBaseRecords;
  if (technique == AggTechnique::kEager || technique == AggTechnique::kNaive) {
    n = std::min<uint64_t>(n, 300'000'000 / (11 * num_queries));
    n = std::max<uint64_t>(n, 250'000);  // past the largest range (200 s)
  }
  Rng rng(5);
  RunResult out;
  out.records = n;
  Stopwatch sw;
  for (uint64_t i = 0; i < n; ++i) {
    agg->OnElement(static_cast<Timestamp>(i), rng.NextDouble());
  }
  out.seconds = sw.ElapsedSeconds();
  out.stats = agg->stats();
  return out;
}

void Run() {
  bench::Header(
      "E2: N concurrent sliding-window SUM queries, shared aggregation",
      "Cutty is suitable for multi-query aggregation sharing: per-record "
      "cost stays ~constant in the number of queries");

  const size_t query_counts[] = {1, 4, 16, 64, 256};
  const AggTechnique techniques[] = {
      AggTechnique::kCutty, AggTechnique::kPairs, AggTechnique::kPanes,
      AggTechnique::kEager, AggTechnique::kNaive,
  };

  Table table({"queries", "technique", "throughput", "aggs/record",
               "slices", "peak stored"});
  for (size_t q : query_counts) {
    for (AggTechnique t : techniques) {
      const RunResult r = RunOne(t, q);
      table.AddRow({Fmt("%zu", q), std::string(AggTechniqueToString(t)),
                    bench::Rate(static_cast<double>(r.records), r.seconds),
                    Fmt("%.2f", r.stats.OpsPerRecord()),
                    bench::Count(static_cast<double>(r.stats.slices_created)),
                    bench::Count(static_cast<double>(r.stats.peak_stored))});
    }
  }
  table.Print();

  // Ablation: the shared slicer's boundary fast-path (skip polling
  // periodic window functions between their published boundaries).
  std::printf("Ablation: slicer boundary fast-path (cutty, shared store)\n\n");
  Table ablation({"queries", "fast-path", "throughput"});
  for (size_t q : query_counts) {
    for (bool disable : {false, true}) {
      SlicingAggregator<SumAgg<double>>::Options opt;
      opt.disable_wakeup_fastpath = disable;
      SlicingAggregator<SumAgg<double>> agg(SumAgg<double>(), opt);
      for (auto [range, slide] : MakeQuerySet(q, 99)) {
        agg.AddQuery(std::make_unique<SlidingWindowFn>(range, slide),
                     nullptr);
      }
      const uint64_t n = disable && q >= 64 ? kBaseRecords / 8
                                            : kBaseRecords;
      Rng rng(5);
      Stopwatch sw;
      for (uint64_t i = 0; i < n; ++i) {
        agg.OnElement(static_cast<Timestamp>(i), rng.NextDouble());
      }
      const double secs = sw.ElapsedSeconds();
      ablation.AddRow({Fmt("%zu", q), disable ? "off" : "on",
                       bench::Rate(static_cast<double>(n), secs)});
    }
  }
  ablation.Print();
}

}  // namespace
}  // namespace streamline

int main() {
  streamline::Run();
  return 0;
}
