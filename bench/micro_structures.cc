// Micro-benchmarks (google-benchmark) of the core data structures the
// experiment binaries rely on: slice stores, window functions, value
// hashing, serde, and the bounded channel. Useful for spotting regressions
// below the experiment level.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include <unordered_map>

#include "agg/slice_store.h"
#include "common/flat_hash_map.h"
#include "common/queue.h"
#include "common/random.h"
#include "common/serde.h"
#include "common/spsc_ring.h"
#include "dataflow/operator.h"
#include "dataflow/operators.h"
#include "window/aggregate_fn.h"
#include "window/window_fn.h"

// Global allocation counter (see BM_RecordLifecycleAllocations): counts
// every operator new so a benchmark can prove a code path is
// allocation-free.
namespace {
std::atomic<uint64_t> g_allocs{0};
}  // namespace

void* operator new(size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace streamline {
namespace {

void BM_FlatFatAppendEvict(benchmark::State& state) {
  const auto window = static_cast<size_t>(state.range(0));
  FlatFatStore<SumAgg<double>> store;
  size_t appended = 0;
  for (auto _ : state) {
    store.Append(static_cast<Timestamp>(appended), 1.0);
    ++appended;
    if (appended > window) store.EvictBefore(appended - window);
  }
  state.SetItemsProcessed(static_cast<int64_t>(appended));
}
BENCHMARK(BM_FlatFatAppendEvict)->Arg(64)->Arg(1024)->Arg(16384);

void BM_FlatFatRangeQuery(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  FlatFatStore<MaxAgg<double>> store;
  Rng rng(1);
  for (size_t i = 0; i < n; ++i) {
    store.Append(static_cast<Timestamp>(i), rng.NextDouble());
  }
  size_t i = 0;
  for (auto _ : state) {
    const size_t a = i % (n / 2);
    benchmark::DoNotOptimize(store.RangeCombine(a, a + n / 2));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_FlatFatRangeQuery)->Arg(1024)->Arg(65536);

void BM_LinearStoreRangeQuery(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  LinearStore<MaxAgg<double>> store;
  Rng rng(1);
  for (size_t i = 0; i < n; ++i) {
    store.Append(static_cast<Timestamp>(i), rng.NextDouble());
  }
  size_t i = 0;
  for (auto _ : state) {
    const size_t a = i % (n / 2);
    benchmark::DoNotOptimize(store.RangeCombine(a, a + n / 2));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_LinearStoreRangeQuery)->Arg(1024)->Arg(65536);

void BM_PrefixStoreRangeQuery(benchmark::State& state) {
  PrefixStore<SumAgg<double>> store;
  for (size_t i = 0; i < 65536; ++i) {
    store.Append(static_cast<Timestamp>(i), 1.0);
  }
  size_t i = 0;
  for (auto _ : state) {
    const size_t a = i % 32768;
    benchmark::DoNotOptimize(store.RangeCombine(a, a + 32768));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_PrefixStoreRangeQuery);

void BM_SlidingWindowFnOnElement(benchmark::State& state) {
  SlidingWindowFn fn(60'000, 1'000);
  WindowEvents events;
  Timestamp t = 0;
  for (auto _ : state) {
    events.clear();
    fn.OnElement(t++, Value(), &events);
    benchmark::DoNotOptimize(events.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(t));
}
BENCHMARK(BM_SlidingWindowFnOnElement);

void BM_ValueHash(benchmark::State& state) {
  const Value values[] = {Value(int64_t{123456}), Value(3.14159),
                          Value("campaign-4711")};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(values[i % 3].Hash());
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_ValueHash);

void BM_RecordSerde(benchmark::State& state) {
  const Record r = MakeRecord(42, Value(int64_t{7}), Value("user-123"),
                              Value(1.5), Value(true));
  size_t n = 0;
  for (auto _ : state) {
    BinaryWriter w;
    w.WriteRecord(r);
    BinaryReader reader(w.buffer());
    auto got = reader.ReadRecord();
    benchmark::DoNotOptimize(got.ok());
    ++n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_RecordSerde);

void BM_BoundedQueuePingPong(benchmark::State& state) {
  BoundedQueue<int> q(1024);
  size_t n = 0;
  for (auto _ : state) {
    q.Push(1);
    benchmark::DoNotOptimize(q.Pop());
    ++n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_BoundedQueuePingPong);

// Single-thread ping-pong on the lock-free ring: the floor for one
// push+pop pair with no contention. Compare against
// BM_BoundedQueuePingPong (mutex + condvar).
void BM_SpscRingPingPong(benchmark::State& state) {
  SpscRing<int> ring(1024);
  int out = 0;
  size_t n = 0;
  for (auto _ : state) {
    ring.TryPush(int{1});
    ring.TryPop(&out);
    benchmark::DoNotOptimize(out);
    ++n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_SpscRingPingPong);

// Cross-thread throughput, mutex MPMC queue vs lock-free SPSC channel: the
// timed loop pushes against a live consumer thread, so items/sec reflects
// the full producer-side handoff cost (synchronization + backpressure).
void BM_BoundedQueueThroughput(benchmark::State& state) {
  BoundedQueue<int> q(1024);
  std::atomic<uint64_t> consumed{0};
  std::thread consumer([&] {
    while (q.Pop().has_value()) {
      consumed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  size_t n = 0;
  for (auto _ : state) {
    q.Push(1);
    ++n;
  }
  q.Close();
  consumer.join();
  state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_BoundedQueueThroughput)->UseRealTime();

void BM_SpscChannelThroughput(benchmark::State& state) {
  Doorbell bell;
  SpscChannel<int> ch(1024, &bell);
  std::atomic<uint64_t> consumed{0};
  std::thread consumer([&] {
    while (ch.Pop().has_value()) {
      consumed.fetch_add(1, std::memory_order_relaxed);
    }
  });
  size_t n = 0;
  for (auto _ : state) {
    ch.Push(1);
    ++n;
  }
  ch.Close();
  consumer.join();
  state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_SpscChannelThroughput)->UseRealTime();

// The data plane's per-record claim: moving a small record through an
// output buffer, an SPSC ring and back through batch recycling touches the
// allocator zero times in steady state. The bench fails loudly (via the
// reported counter staying nonzero) if an allocation sneaks back in.
void BM_RecordLifecycleAllocations(benchmark::State& state) {
  constexpr size_t kBatch = 256;
  SpscRing<std::vector<Record>> ring(8);
  SpscRing<std::vector<Record>> recycle(8);
  std::vector<Record> buffer;
  buffer.reserve(kBatch);
  // Warm the recycle loop with one round-tripped buffer.
  uint64_t allocs_after_warmup = 0;
  size_t records = 0;
  uint64_t iter = 0;
  for (auto _ : state) {
    if (iter == 1) allocs_after_warmup = g_allocs.load();
    // Producer: fill a batch of 2-field records (inline storage only).
    for (size_t i = 0; i < kBatch; ++i) {
      buffer.push_back(MakeRecord(static_cast<Timestamp>(i),
                                  Value(static_cast<int64_t>(i)),
                                  Value(0.5 * static_cast<double>(i))));
    }
    records += kBatch;
    ring.TryPush(std::move(buffer));
    // Acquire the next buffer from the recycle ring (allocates only on the
    // very first iteration).
    buffer = std::vector<Record>();
    if (!recycle.TryPop(&buffer)) buffer.reserve(kBatch);
    // Consumer: drain the batch, recycle the vector.
    std::vector<Record> batch;
    ring.TryPop(&batch);
    for (Record& r : batch) benchmark::DoNotOptimize(r.timestamp);
    batch.clear();
    recycle.TryPush(std::move(batch));
    ++iter;
  }
  const uint64_t steady_allocs =
      iter > 1 ? g_allocs.load() - allocs_after_warmup : 0;
  state.SetItemsProcessed(static_cast<int64_t>(records));
  state.counters["allocs_per_record_steady"] =
      records > 0 ? static_cast<double>(steady_allocs) /
                        static_cast<double>(records)
                  : 0.0;
}
BENCHMARK(BM_RecordLifecycleAllocations);

// ---------------------------------------------------------------------------
// Keyed-state backend: FlatHashMap (pre-hashed, open addressing) vs.
// std::unordered_map<Value, V> (the engine's previous backend). Key mixes
// mirror the shuffle: uniform int64 keys for hit/miss, Zipf keys for the
// skewed ad-CTR shape, and a churn loop for join-style insert/erase.

std::vector<Value> UniformKeys(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<Value> keys;
  keys.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(Value(static_cast<int64_t>(rng.NextU64() >> 1)));
  }
  return keys;
}

void BM_FlatMapLookupHit(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto keys = UniformKeys(n, 7);
  FlatHashMap<Value, int64_t> m;
  std::vector<uint64_t> hashes;
  hashes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = KeyHashOf(keys[i]);
    hashes.push_back(h);
    m.TryEmplace(h, keys[i], static_cast<int64_t>(i));
  }
  size_t i = 0;
  for (auto _ : state) {
    const size_t k = i % n;
    benchmark::DoNotOptimize(m.Find(hashes[k], keys[k]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_FlatMapLookupHit)->Arg(1024)->Arg(100000);

void BM_UnorderedMapLookupHit(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto keys = UniformKeys(n, 7);
  std::unordered_map<Value, int64_t> m;
  for (size_t i = 0; i < n; ++i) m.emplace(keys[i], static_cast<int64_t>(i));
  size_t i = 0;
  for (auto _ : state) {
    const size_t k = i % n;
    benchmark::DoNotOptimize(m.find(keys[k]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_UnorderedMapLookupHit)->Arg(1024)->Arg(100000);

void BM_FlatMapLookupMiss(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto keys = UniformKeys(n, 7);
  const auto probes = UniformKeys(n, 8);  // disjoint with high probability
  FlatHashMap<Value, int64_t> m;
  for (size_t i = 0; i < n; ++i) {
    m.TryEmplace(KeyHashOf(keys[i]), keys[i], 0);
  }
  std::vector<uint64_t> probe_hashes;
  probe_hashes.reserve(n);
  for (const Value& v : probes) probe_hashes.push_back(KeyHashOf(v));
  size_t i = 0;
  for (auto _ : state) {
    const size_t k = i % n;
    benchmark::DoNotOptimize(m.Find(probe_hashes[k], probes[k]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_FlatMapLookupMiss)->Arg(100000);

void BM_UnorderedMapLookupMiss(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto keys = UniformKeys(n, 7);
  const auto probes = UniformKeys(n, 8);
  std::unordered_map<Value, int64_t> m;
  for (size_t i = 0; i < n; ++i) m.emplace(keys[i], 0);
  size_t i = 0;
  for (auto _ : state) {
    const size_t k = i % n;
    benchmark::DoNotOptimize(m.find(probes[k]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_UnorderedMapLookupMiss)->Arg(100000);

// Insert/erase churn over a rolling key window, the interval-join state
// shape: every key is inserted once and evicted once.
void BM_FlatMapInsertEraseChurn(benchmark::State& state) {
  FlatHashMap<Value, int64_t> m;
  int64_t next = 0;
  constexpr int64_t kLive = 4096;
  for (auto _ : state) {
    const Value k(next);
    m.TryEmplace(KeyHashOf(k), k, next);
    if (next >= kLive) {
      const Value old(next - kLive);
      m.Erase(KeyHashOf(old), old);
    }
    ++next;
  }
  state.SetItemsProcessed(next);
}
BENCHMARK(BM_FlatMapInsertEraseChurn);

void BM_UnorderedMapInsertEraseChurn(benchmark::State& state) {
  std::unordered_map<Value, int64_t> m;
  int64_t next = 0;
  constexpr int64_t kLive = 4096;
  for (auto _ : state) {
    m.emplace(Value(next), next);
    if (next >= kLive) m.erase(Value(next - kLive));
    ++next;
  }
  state.SetItemsProcessed(next);
}
BENCHMARK(BM_UnorderedMapInsertEraseChurn);

// Skewed upsert mix (Zipf s=1.1 over 100k keys): the ad-CTR aggregation
// shape -- most records hit a few hot keys already in cache, the long tail
// keeps inserting.
void BM_FlatMapZipfUpsert(benchmark::State& state) {
  ZipfGenerator zipf(100000, 1.1, 42);
  FlatHashMap<Value, int64_t> m;
  size_t i = 0;
  for (auto _ : state) {
    const Value k(static_cast<int64_t>(zipf.Next()));
    auto [entry, inserted] = m.TryEmplace(KeyHashOf(k), k, 0);
    (void)inserted;
    ++entry->second;
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_FlatMapZipfUpsert);

void BM_UnorderedMapZipfUpsert(benchmark::State& state) {
  ZipfGenerator zipf(100000, 1.1, 42);
  std::unordered_map<Value, int64_t> m;
  size_t i = 0;
  for (auto _ : state) {
    const Value k(static_cast<int64_t>(zipf.Next()));
    ++m[k];
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_UnorderedMapZipfUpsert);

// The hash-once payoff in isolation: same flat map, same keys -- one
// variant re-hashes the Value per lookup (what a keyed operator did before
// carried hashes), the other uses the precomputed hash (what it does now).
void BM_FlatMapLookupRehashed(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto keys = UniformKeys(n, 7);
  FlatHashMap<Value, int64_t> m;
  for (size_t i = 0; i < n; ++i) {
    m.TryEmplace(KeyHashOf(keys[i]), keys[i], 0);
  }
  size_t i = 0;
  for (auto _ : state) {
    const Value& k = keys[i % n];
    benchmark::DoNotOptimize(m.Find(KeyHashOf(k), k));  // hash per lookup
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_FlatMapLookupRehashed)->Arg(100000);

void BM_FlatMapLookupPreHashed(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const auto keys = UniformKeys(n, 7);
  FlatHashMap<Value, int64_t> m;
  std::vector<uint64_t> hashes;
  hashes.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t h = KeyHashOf(keys[i]);
    hashes.push_back(h);
    m.TryEmplace(h, keys[i], 0);
  }
  size_t i = 0;
  for (auto _ : state) {
    const size_t k = i % n;
    benchmark::DoNotOptimize(m.Find(hashes[k], keys[k]));  // carried hash
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_FlatMapLookupPreHashed)->Arg(100000);

// ---------------------------------------------------------------------------
// Batch-at-a-time dispatch: the same map->filter operator chain driven one
// virtual ProcessRecord call per record per hop vs one virtual ProcessBatch
// call per hop. The work per record is identical; the delta is pure
// dispatch + collector-indirection overhead, which is what the executor's
// batch path amortizes.

class CountingCollector : public Collector {
 public:
  void Emit(Record&& r) override {
    benchmark::DoNotOptimize(r.timestamp);
    ++count;
  }
  void EmitBatch(std::vector<Record>&& batch) override {
    for (Record& r : batch) benchmark::DoNotOptimize(r.timestamp);
    count += batch.size();
    batch.clear();
  }
  size_t count = 0;
};

// Forwards into the next operator, mirroring the executor's ChainCollector.
class LinkCollector : public Collector {
 public:
  LinkCollector(Operator* next, Collector* downstream)
      : next_(next), downstream_(downstream) {}
  void Emit(Record&& r) override {
    next_->ProcessRecord(0, std::move(r), downstream_);
  }
  void EmitBatch(std::vector<Record>&& batch) override {
    next_->ProcessBatch(0, std::move(batch), downstream_);
  }

 private:
  Operator* next_;
  Collector* downstream_;
};

std::vector<Record> DispatchInput(size_t n) {
  std::vector<Record> records;
  records.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    records.push_back(MakeRecord(static_cast<Timestamp>(i),
                                 Value(static_cast<int64_t>(i % 97)),
                                 Value(static_cast<double>(i % 97))));
  }
  return records;
}

MapOperator MakeBenchMap() {
  return MapOperator("map", [](Record&& r) {
    r.fields[1] = Value(r.field(1).AsDouble() * 1.5 + 1.0);
    return std::move(r);
  });
}

FilterOperator MakeBenchFilter() {
  return FilterOperator(
      "filter", [](const Record& r) { return r.field(1).AsDouble() > 10.0; });
}

void BM_ChainPerRecordDispatch(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  MapOperator map = MakeBenchMap();
  FilterOperator filter = MakeBenchFilter();
  CountingCollector sink;
  LinkCollector link(&filter, &sink);
  const std::vector<Record> base = DispatchInput(n);
  std::vector<Record> batch;
  size_t records = 0;
  // lint:allow(virtual-per-record-loop): this bench measures exactly that.
  for (auto _ : state) {
    batch = base;
    for (Record& r : batch) map.ProcessRecord(0, std::move(r), &link);
    batch.clear();
    records += n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(records));
}
BENCHMARK(BM_ChainPerRecordDispatch)->Arg(256)->Arg(1024);

void BM_ChainProcessBatchDispatch(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  MapOperator map = MakeBenchMap();
  FilterOperator filter = MakeBenchFilter();
  CountingCollector sink;
  LinkCollector link(&filter, &sink);
  const std::vector<Record> base = DispatchInput(n);
  std::vector<Record> batch;
  size_t records = 0;
  for (auto _ : state) {
    batch = base;
    // EmitBatch passes the vector by rvalue reference down the whole
    // chain, so `batch` itself comes back empty with capacity intact.
    map.ProcessBatch(0, std::move(batch), &link);
    records += n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(records));
}
BENCHMARK(BM_ChainProcessBatchDispatch)->Arg(256)->Arg(1024);

// ---------------------------------------------------------------------------
// Aggregation kernels: the generic per-element fold the aggregators ran
// before (store to the partial through a pointer every element, the
// open_partial_ shape) vs the contiguous FoldSpan kernel AggFoldSpan
// dispatches to (local accumulator, vectorizable loop). Results are
// bit-identical by contract; only the speed differs.

template <typename Agg>
std::vector<typename Agg::Input> KernelInput(size_t n) {
  Rng rng(3);
  std::vector<typename Agg::Input> values;
  values.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    values.push_back(static_cast<typename Agg::Input>(rng.NextDouble()));
  }
  return values;
}

template <typename Agg>
void BM_AggCombinePerElement(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const Agg agg;
  const auto values = KernelInput<Agg>(n);
  size_t folded = 0;
  for (auto _ : state) {
    typename Agg::Partial acc = agg.Identity();
    auto* p = &acc;
    benchmark::DoNotOptimize(p);  // acc escapes: per-element memory fold
    for (size_t i = 0; i < n; ++i) *p = agg.Combine(*p, agg.Lift(values[i]));
    benchmark::DoNotOptimize(acc);
    folded += n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(folded));
}
BENCHMARK_TEMPLATE(BM_AggCombinePerElement, SumAgg<double>)->Arg(4096);
BENCHMARK_TEMPLATE(BM_AggCombinePerElement, CountAgg<double>)->Arg(4096);
BENCHMARK_TEMPLATE(BM_AggCombinePerElement, MinAgg<double>)->Arg(4096);
BENCHMARK_TEMPLATE(BM_AggCombinePerElement, MaxAgg<double>)->Arg(4096);

template <typename Agg>
void BM_AggFoldSpanKernel(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  const Agg agg;
  const auto values = KernelInput<Agg>(n);
  size_t folded = 0;
  for (auto _ : state) {
    typename Agg::Partial acc = agg.Identity();
    AggFoldSpan(agg, &acc, values.data(), n);
    benchmark::DoNotOptimize(acc);
    folded += n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(folded));
}
BENCHMARK_TEMPLATE(BM_AggFoldSpanKernel, SumAgg<double>)->Arg(4096);
BENCHMARK_TEMPLATE(BM_AggFoldSpanKernel, CountAgg<double>)->Arg(4096);
BENCHMARK_TEMPLATE(BM_AggFoldSpanKernel, MinAgg<double>)->Arg(4096);
BENCHMARK_TEMPLATE(BM_AggFoldSpanKernel, MaxAgg<double>)->Arg(4096);

}  // namespace
}  // namespace streamline

BENCHMARK_MAIN();
