// Micro-benchmarks (google-benchmark) of the core data structures the
// experiment binaries rely on: slice stores, window functions, value
// hashing, serde, and the bounded channel. Useful for spotting regressions
// below the experiment level.

#include <benchmark/benchmark.h>

#include "agg/slice_store.h"
#include "common/queue.h"
#include "common/random.h"
#include "common/serde.h"
#include "window/aggregate_fn.h"
#include "window/window_fn.h"

namespace streamline {
namespace {

void BM_FlatFatAppendEvict(benchmark::State& state) {
  const auto window = static_cast<size_t>(state.range(0));
  FlatFatStore<SumAgg<double>> store;
  size_t appended = 0;
  for (auto _ : state) {
    store.Append(static_cast<Timestamp>(appended), 1.0);
    ++appended;
    if (appended > window) store.EvictBefore(appended - window);
  }
  state.SetItemsProcessed(static_cast<int64_t>(appended));
}
BENCHMARK(BM_FlatFatAppendEvict)->Arg(64)->Arg(1024)->Arg(16384);

void BM_FlatFatRangeQuery(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  FlatFatStore<MaxAgg<double>> store;
  Rng rng(1);
  for (size_t i = 0; i < n; ++i) {
    store.Append(static_cast<Timestamp>(i), rng.NextDouble());
  }
  size_t i = 0;
  for (auto _ : state) {
    const size_t a = i % (n / 2);
    benchmark::DoNotOptimize(store.RangeCombine(a, a + n / 2));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_FlatFatRangeQuery)->Arg(1024)->Arg(65536);

void BM_LinearStoreRangeQuery(benchmark::State& state) {
  const auto n = static_cast<size_t>(state.range(0));
  LinearStore<MaxAgg<double>> store;
  Rng rng(1);
  for (size_t i = 0; i < n; ++i) {
    store.Append(static_cast<Timestamp>(i), rng.NextDouble());
  }
  size_t i = 0;
  for (auto _ : state) {
    const size_t a = i % (n / 2);
    benchmark::DoNotOptimize(store.RangeCombine(a, a + n / 2));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_LinearStoreRangeQuery)->Arg(1024)->Arg(65536);

void BM_PrefixStoreRangeQuery(benchmark::State& state) {
  PrefixStore<SumAgg<double>> store;
  for (size_t i = 0; i < 65536; ++i) {
    store.Append(static_cast<Timestamp>(i), 1.0);
  }
  size_t i = 0;
  for (auto _ : state) {
    const size_t a = i % 32768;
    benchmark::DoNotOptimize(store.RangeCombine(a, a + 32768));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_PrefixStoreRangeQuery);

void BM_SlidingWindowFnOnElement(benchmark::State& state) {
  SlidingWindowFn fn(60'000, 1'000);
  WindowEvents events;
  Timestamp t = 0;
  for (auto _ : state) {
    events.clear();
    fn.OnElement(t++, Value(), &events);
    benchmark::DoNotOptimize(events.size());
  }
  state.SetItemsProcessed(static_cast<int64_t>(t));
}
BENCHMARK(BM_SlidingWindowFnOnElement);

void BM_ValueHash(benchmark::State& state) {
  const Value values[] = {Value(int64_t{123456}), Value(3.14159),
                          Value("campaign-4711")};
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(values[i % 3].Hash());
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(i));
}
BENCHMARK(BM_ValueHash);

void BM_RecordSerde(benchmark::State& state) {
  const Record r = MakeRecord(42, Value(int64_t{7}), Value("user-123"),
                              Value(1.5), Value(true));
  size_t n = 0;
  for (auto _ : state) {
    BinaryWriter w;
    w.WriteRecord(r);
    BinaryReader reader(w.buffer());
    auto got = reader.ReadRecord();
    benchmark::DoNotOptimize(got.ok());
    ++n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_RecordSerde);

void BM_BoundedQueuePingPong(benchmark::State& state) {
  BoundedQueue<int> q(1024);
  size_t n = 0;
  for (auto _ : state) {
    q.Push(1);
    benchmark::DoNotOptimize(q.Pop());
    ++n;
  }
  state.SetItemsProcessed(static_cast<int64_t>(n));
}
BENCHMARK(BM_BoundedQueuePingPong);

}  // namespace
}  // namespace streamline

BENCHMARK_MAIN();
