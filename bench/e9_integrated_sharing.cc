// E9 -- end-to-end STREAMLINE: multi-window aggregation inside the engine.
//
// The system-level composition of E2 and E5: a keyed ad-CTR job computes K
// sliding-window aggregates per campaign on the pipelined engine. With the
// Cutty-backed shared window operator, engine throughput stays ~flat as K
// grows; with eager per-window state it degrades. A high-cardinality tier
// (100k campaigns) exercises the pre-hashed flat keyed-state backend where
// per-record state lookups dominate.
//
// Usage: e9_integrated_sharing [records] [max_windows]
//   records      records per run (default 1,000,000)
//   max_windows  cap on the K sweep (default 32); pass 4 for a smoke run
//
// Results: human table on stdout + machine-readable BENCH_E9.json
// (throughput per configuration and the keyed-state gauges of the
// high-cardinality runs).

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/datastream.h"
#include "bench/harness.h"
#include "workload/adstream.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

constexpr uint64_t kDefaultRecords = 1'000'000;

std::vector<std::shared_ptr<const WindowFunction>> MakeWindows(int k) {
  // Dashboard-style window set: 10 s slide, ranges 1, 2, 3, ... minutes.
  std::vector<std::shared_ptr<const WindowFunction>> out;
  for (int i = 0; i < k; ++i) {
    out.push_back(
        std::make_shared<SlidingWindowFn>(60'000 * (i + 1), 10'000));
  }
  return out;
}

struct RunResult {
  double secs = 0;
  // Keyed-state gauges of the window operator, summed/maxed over subtasks.
  double keys = 0;
  double load_factor = 0;
  double max_probe = 0;
};

// `workers` sizes the scheduler's worker pool (0 = hardware concurrency);
// when `report` is set, the job's scheduler.* gauges are copied into it
// under `sched_prefix`.
RunResult RunOne(int k, WindowBackend backend, uint64_t records,
                 uint64_t campaigns, size_t workers = 0,
                 bench::JsonReport* report = nullptr,
                 const std::string& sched_prefix = "") {
  AdStreamGenerator::Options opt;
  opt.num_campaigns = campaigns;
  opt.events_per_second = 10'000;
  Environment env(2);
  auto sink = std::make_shared<NullSink>();
  auto gen = std::make_shared<AdStreamGenerator>(opt, 51);
  env.FromGenerator("ads",
                    [gen, records](uint64_t seq) -> std::optional<Record> {
                      if (seq >= records) return std::nullopt;
                      return gen->Next().ToRecord();
                    })
      .KeyBy(0)
      .Window(MakeWindows(k))
      .Aggregate(DynAggKind::kAvg, 1, backend, "ctr")  // CTR = avg(is_click)
      .Sink(sink);
  JobOptions options;
  options.worker_threads = workers;
  auto job = env.CreateJob(options);
  STREAMLINE_CHECK_OK(job.status());
  Stopwatch sw;
  STREAMLINE_CHECK_OK((*job)->Run());
  RunResult res;
  res.secs = sw.ElapsedSeconds();
  if (report != nullptr) {
    bench::AddSchedulerGauges(*report, sched_prefix, (*job)->metrics());
  }
  for (int s = 0; s < 2; ++s) {
    const std::string prefix = "op.ctr." + std::to_string(s) + ".state.";
    MetricsRegistry* m = (*job)->metrics();
    res.keys += m->GetGauge(prefix + "keys")->value();
    res.load_factor =
        std::max(res.load_factor, m->GetGauge(prefix + "load_factor")->value());
    res.max_probe =
        std::max(res.max_probe, m->GetGauge(prefix + "max_probe")->value());
  }
  return res;
}

const char* BackendName(WindowBackend b) {
  return b == WindowBackend::kShared ? "cutty-shared" : "eager";
}

void Run(uint64_t records, int max_k) {
  bench::Header(
      "E9: K shared CTR windows per campaign inside the engine",
      "The Cutty-backed window operator keeps engine throughput ~flat in "
      "the number of concurrent windows; eager per-window state degrades");

  bench::JsonReport report("BENCH_E9.json");
  report.Add("records", records);

  Table table({"campaigns", "windows/key", "backend", "records",
               "throughput", "state keys"});
  for (int k : {1, 2, 4, 8, 16, 32}) {
    if (k > max_k) break;
    for (WindowBackend backend :
         {WindowBackend::kShared, WindowBackend::kEager}) {
      // Eager's cost grows with total window overlap; cap its input so the
      // sweep finishes promptly (throughput is rate-normalized).
      const uint64_t n = backend == WindowBackend::kEager
                             ? records / (k > 4 ? 4 : 1)
                             : records;
      const RunResult r = RunOne(k, backend, n, /*campaigns=*/64);
      const double rps = static_cast<double>(n) / r.secs;
      table.AddRow({"64", Fmt("%d", k), BackendName(backend),
                    bench::Count(static_cast<double>(n)),
                    bench::Rate(static_cast<double>(n), r.secs),
                    bench::Count(r.keys)});
      report.Add(Fmt("%s_k%d_rps", BackendName(backend), k), rps);
    }
  }

  // High-cardinality tier: >= 100k distinct keys, one window. Per-record
  // keyed-state lookups dominate here, so this row tracks the flat
  // pre-hashed backend (and its gauges) rather than window sharing.
  for (WindowBackend backend :
       {WindowBackend::kShared, WindowBackend::kEager}) {
    const uint64_t campaigns = 100'000;
    const RunResult r = RunOne(1, backend, records, campaigns);
    const double rps = static_cast<double>(records) / r.secs;
    table.AddRow({bench::Count(static_cast<double>(campaigns)), "1",
                  BackendName(backend),
                  bench::Count(static_cast<double>(records)),
                  bench::Rate(static_cast<double>(records), r.secs),
                  bench::Count(r.keys)});
    const std::string prefix = Fmt("highcard_%s", BackendName(backend));
    report.Add(prefix + "_rps", rps);
    report.Add(prefix + "_state_keys", r.keys);
    report.Add(prefix + "_state_load_factor", r.load_factor);
    report.Add(prefix + "_state_max_probe", r.max_probe);
  }

  table.Print();

  {
    // Worker sweep: the shared-backend job (K = min(8, max_k) windows per
    // key) over scheduler pools of {1,2,4,hw} workers. Scheduler counters
    // land in the JSON report per row.
    std::printf("Worker sweep (scheduler pool size, cutty-shared)\n\n");
    const int k = std::min(8, max_k);
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<size_t> sweep = {1, 2, 4};
    if (std::find(sweep.begin(), sweep.end(), static_cast<size_t>(hw)) ==
        sweep.end()) {
      sweep.push_back(hw);
    }
    Table wtable({"workers", "windows/key", "throughput", "vs w=1"});
    double base = 0;
    for (size_t w : sweep) {
      const RunResult r =
          RunOne(k, WindowBackend::kShared, records, /*campaigns=*/64, w,
                 &report, Fmt("shared_k%d_w%zu_sched_", k, w));
      if (w == 1) base = r.secs;
      report.Add(Fmt("shared_k%d_w%zu_rps", k, w),
                 static_cast<double>(records) / r.secs);
      wtable.AddRow({Fmt("%zu%s", w, w == hw ? " (hw)" : ""), Fmt("%d", k),
                     bench::Rate(static_cast<double>(records), r.secs),
                     Fmt("%.2fx", base / r.secs)});
    }
    wtable.Print();
  }

  report.Write();
}

}  // namespace
}  // namespace streamline

int main(int argc, char** argv) {
  const uint64_t records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10)
               : streamline::kDefaultRecords;
  const int max_k = argc > 2 ? std::atoi(argv[2]) : 32;
  streamline::Run(records, max_k);
  return 0;
}
