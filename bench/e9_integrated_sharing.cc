// E9 -- end-to-end STREAMLINE: multi-window aggregation inside the engine.
//
// The system-level composition of E2 and E5: a keyed ad-CTR job computes K
// sliding-window aggregates per campaign on the pipelined engine. With the
// Cutty-backed shared window operator, engine throughput stays ~flat as K
// grows; with eager per-window state it degrades.

#include <memory>

#include "api/datastream.h"
#include "bench/harness.h"
#include "workload/adstream.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

constexpr uint64_t kRecords = 1'000'000;

std::vector<std::shared_ptr<const WindowFunction>> MakeWindows(int k) {
  // Dashboard-style window set: 10 s slide, ranges 1, 2, 3, ... minutes.
  std::vector<std::shared_ptr<const WindowFunction>> out;
  for (int i = 0; i < k; ++i) {
    out.push_back(
        std::make_shared<SlidingWindowFn>(60'000 * (i + 1), 10'000));
  }
  return out;
}

double RunOne(int k, WindowBackend backend, uint64_t records) {
  AdStreamGenerator::Options opt;
  opt.num_campaigns = 64;
  opt.events_per_second = 10'000;
  Environment env(2);
  auto sink = std::make_shared<NullSink>();
  auto gen = std::make_shared<AdStreamGenerator>(opt, 51);
  env.FromGenerator("ads",
                    [gen, records](uint64_t seq) -> std::optional<Record> {
                      if (seq >= records) return std::nullopt;
                      return gen->Next().ToRecord();
                    })
      .KeyBy(0)
      .Window(MakeWindows(k))
      .Aggregate(DynAggKind::kAvg, 1, backend)  // CTR = avg(is_click)
      .Sink(sink);
  Stopwatch sw;
  STREAMLINE_CHECK_OK(env.Execute());
  return sw.ElapsedSeconds();
}

void Run() {
  bench::Header(
      "E9: K shared CTR windows per campaign inside the engine",
      "The Cutty-backed window operator keeps engine throughput ~flat in "
      "the number of concurrent windows; eager per-window state degrades");

  Table table({"windows/key", "backend", "records", "throughput"});
  for (int k : {1, 2, 4, 8, 16, 32}) {
    for (WindowBackend backend :
         {WindowBackend::kShared, WindowBackend::kEager}) {
      // Eager's cost grows with total window overlap; cap its input so the
      // sweep finishes promptly (throughput is rate-normalized).
      const uint64_t n = backend == WindowBackend::kEager
                             ? kRecords / (k > 4 ? 4 : 1)
                             : kRecords;
      const double secs = RunOne(k, backend, n);
      table.AddRow({Fmt("%d", k),
                    backend == WindowBackend::kShared ? "cutty-shared"
                                                      : "eager",
                    bench::Count(static_cast<double>(n)),
                    bench::Rate(static_cast<double>(n), secs)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace streamline

int main() {
  streamline::Run();
  return 0;
}
