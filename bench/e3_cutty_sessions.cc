// E3 -- non-periodic (session / punctuation) windows.
//
// Operationalizes: "Cutty is also suitable for ... non-periodic windows,
// such as session windows, which can be used for more complex business
// logic" (STREAMLINE, Sec. 1). Periodic-only techniques (Pairs, Panes,
// eager buckets) cannot express these windows at all; the comparison is
// Cutty's slicing versus buffer-and-recompute.

#include <memory>

#include "agg/techniques.h"
#include "bench/harness.h"
#include "common/random.h"
#include "window/aggregate_fn.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

// Bursty stream: sessions of `burst` events spaced 100 ms, separated by
// idle gaps (3x the session gap), so a session window with gap
// `session_gap_ms` recovers them exactly.
std::vector<Timestamp> MakeBurstyStream(uint64_t n, uint64_t burst,
                                        Duration session_gap_ms) {
  std::vector<Timestamp> out;
  out.reserve(n);
  Timestamp t = 0;
  uint64_t in_burst = 0;
  while (out.size() < n) {
    out.push_back(t);
    if (++in_burst == burst) {
      in_burst = 0;
      t += session_gap_ms * 3;
    } else {
      t += 100;
    }
  }
  return out;
}

struct RunResult {
  double seconds = 0;
  uint64_t records = 0;
  uint64_t fires = 0;
  AggStats stats;
};

RunResult RunSession(AggTechnique technique, Duration gap_ms, uint64_t burst,
                     uint64_t max_records) {
  auto agg = MakeAggregator<SumAgg<double>>(technique);
  uint64_t fired = 0;
  agg->AddQuery(std::make_unique<SessionWindowFn>(gap_ms),
                [&fired](size_t, const Window&, const double&) { ++fired; });
  const auto stream = MakeBurstyStream(max_records, burst, gap_ms);
  Rng rng(3);
  RunResult out;
  out.records = stream.size();
  Stopwatch sw;
  for (Timestamp t : stream) agg->OnElement(t, rng.NextDouble());
  agg->OnWatermark(kMaxTimestamp);
  out.seconds = sw.ElapsedSeconds();
  out.fires = fired;
  out.stats = agg->stats();
  return out;
}

RunResult RunPunctuation(AggTechnique technique, uint64_t every,
                         uint64_t max_records) {
  auto agg = MakeAggregator<SumAgg<double>>(technique);
  uint64_t fired = 0;
  agg->AddQuery(std::make_unique<PunctuationWindowFn>(
                    [](Timestamp, const Value& v) {
                      return !v.is_null() && v.AsBool();
                    }),
                [&fired](size_t, const Window&, const double&) { ++fired; });
  Rng rng(4);
  RunResult out;
  out.records = max_records;
  Stopwatch sw;
  for (uint64_t i = 0; i < max_records; ++i) {
    agg->OnElement(static_cast<Timestamp>(i), rng.NextDouble(),
                   Value(i % every == 0));
  }
  agg->OnWatermark(kMaxTimestamp);
  out.seconds = sw.ElapsedSeconds();
  out.fires = fired;
  out.stats = agg->stats();
  return out;
}

void Run() {
  bench::Header(
      "E3: non-periodic windows (sessions, punctuations)",
      "Cutty covers non-periodic windows such as session windows; one "
      "partial update per record vs buffer-and-recompute");

  {
    Table table({"session len", "gap", "technique", "throughput",
                 "aggs/record", "sessions fired"});
    const uint64_t bursts[] = {16, 128, 1024};
    for (uint64_t burst : bursts) {
      for (AggTechnique t : {AggTechnique::kCutty, AggTechnique::kNaive}) {
        const uint64_t n =
            t == AggTechnique::kNaive ? 1'000'000 : 2'000'000;
        const RunResult r = RunSession(t, 5'000, burst, n);
        table.AddRow(
            {Fmt("%llu ev", static_cast<unsigned long long>(burst)), "5s",
             std::string(AggTechniqueToString(t)),
             bench::Rate(static_cast<double>(r.records), r.seconds),
             Fmt("%.2f", r.stats.OpsPerRecord()),
             bench::Count(static_cast<double>(r.fires))});
      }
    }
    table.Print();
  }

  {
    // The setting Cutty actually enables: non-periodic windows SHARING one
    // aggregator (and slice store) with periodic dashboards. Recompute pays
    // the sliding windows' full cost; slicing pays one update per record.
    Table table({"query mix", "technique", "throughput", "aggs/record",
                 "state (partials/tuples)"});
    for (AggTechnique t : {AggTechnique::kCutty, AggTechnique::kNaive}) {
      auto agg = MakeAggregator<SumAgg<double>>(t);
      uint64_t fired = 0;
      auto cb = [&fired](size_t, const Window&, const double&) { ++fired; };
      agg->AddQuery(std::make_unique<SessionWindowFn>(5'000), cb);
      agg->AddQuery(std::make_unique<SlidingWindowFn>(60'000, 2'000), cb);
      agg->AddQuery(std::make_unique<SlidingWindowFn>(300'000, 10'000), cb);
      agg->AddQuery(std::make_unique<SlidingWindowFn>(900'000, 30'000), cb);
      const uint64_t n = t == AggTechnique::kNaive ? 2'000'000 : 4'000'000;
      const auto stream = MakeBurstyStream(n, 128, 5'000);
      Rng rng(9);
      Stopwatch sw;
      for (Timestamp ts : stream) agg->OnElement(ts, rng.NextDouble());
      agg->OnWatermark(kMaxTimestamp);
      const double secs = sw.ElapsedSeconds();
      table.AddRow({"session + 3 sliding",
                    std::string(AggTechniqueToString(t)),
                    bench::Rate(static_cast<double>(n), secs),
                    Fmt("%.2f", agg->stats().OpsPerRecord()),
                    bench::Count(static_cast<double>(
                        agg->stats().peak_stored))});
    }
    table.Print();
  }

  {
    Table table({"punctuation every", "technique", "throughput",
                 "aggs/record", "windows fired"});
    const uint64_t periods[] = {32, 512, 8192};
    for (uint64_t every : periods) {
      for (AggTechnique t : {AggTechnique::kCutty, AggTechnique::kNaive}) {
        const uint64_t n =
            t == AggTechnique::kNaive ? 1'000'000 : 2'000'000;
        const RunResult r = RunPunctuation(t, every, n);
        table.AddRow({Fmt("%llu ev", static_cast<unsigned long long>(every)),
                      std::string(AggTechniqueToString(t)),
                      bench::Rate(static_cast<double>(r.records), r.seconds),
                      Fmt("%.2f", r.stats.OpsPerRecord()),
                      bench::Count(static_cast<double>(r.fires))});
      }
    }
    table.Print();
  }
}

}  // namespace
}  // namespace streamline

int main() {
  streamline::Run();
  return 0;
}
