// E6 -- checkpointing overhead on the pipelined engine.
//
// Operationalizes the engine-robustness dimension STREAMLINE inherits from
// its Flink foundation [Carbone et al. 2015]: asynchronous barrier
// snapshotting adds little overhead at practical intervals and degrades
// gracefully as the interval shrinks.

#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <memory>
#include <mutex>
#include <thread>

#include "api/datastream.h"
#include "bench/harness.h"
#include "common/fault_injection.h"
#include "dataflow/snapshot.h"
#include "dataflow/supervisor.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

constexpr uint64_t kRecords = 6'000'000;

struct RunResult {
  double seconds = 0;
  uint64_t checkpoints = 0;
  uint64_t state_bytes = 0;
};

RunResult RunOne(int64_t checkpoint_interval_ms) {
  Environment env(2);
  auto sink = std::make_shared<NullSink>();
  env.FromGenerator(
         "events",
         [](uint64_t seq) -> std::optional<Record> {
           if (seq >= kRecords) return std::nullopt;
           return MakeRecord(static_cast<Timestamp>(seq),
                             Value(static_cast<int64_t>(seq % 256)),
                             Value(static_cast<double>(seq % 131)));
         })
      .KeyBy(0)
      .Window(std::make_shared<SlidingWindowFn>(60'000, 5'000))
      .Aggregate(DynAggKind::kSum, 1)
      .Sink(sink);
  JobOptions opts;
  if (checkpoint_interval_ms > 0) {
    opts.snapshot_store = std::make_shared<SnapshotStore>();
    opts.checkpoint_interval_ms = checkpoint_interval_ms;
  }
  auto job = Job::Create(*env.graph(), opts);
  STREAMLINE_CHECK(job.ok());
  Stopwatch sw;
  STREAMLINE_CHECK_OK((*job)->Run());
  RunResult out;
  out.seconds = sw.ElapsedSeconds();
  if (opts.snapshot_store) {
    out.checkpoints = (*job)->LatestCompletedCheckpoint();
    if (out.checkpoints > 0) {
      out.state_bytes = opts.snapshot_store->TotalBytes(out.checkpoints);
    }
  }
  return out;
}

// --- Recovery cost (supervised restart from the latest checkpoint) ------

constexpr uint64_t kRecoveryRecords = 2'000'000;

/// Checkpointable counting source; `emitted` totals emissions across every
/// incarnation, so (total emitted - kRecoveryRecords) = records replayed.
class RecoverySource : public SourceFunction {
 public:
  RecoverySource(uint64_t total, std::atomic<uint64_t>* emitted)
      : total_(total), emitted_(emitted) {}

  Result<SourcePoll> Poll(SourceContext* ctx) override {
    // One watermark interval per poll keeps the morsel bounded.
    const uint64_t stop = std::min(total_, (pos_ / 1024 + 1) * 1024);
    while (pos_ < stop) {
      Record r = MakeRecord(static_cast<Timestamp>(pos_),
                            Value(static_cast<int64_t>(pos_ % 256)),
                            Value(static_cast<double>(pos_ % 131)));
      const Timestamp ts = r.timestamp;
      if (!ctx->Emit(std::move(r))) return SourcePoll::kExhausted;
      ++pos_;
      emitted_->fetch_add(1, std::memory_order_relaxed);
      if (pos_ % 1024 == 0) ctx->EmitWatermark(ts);
    }
    return pos_ < total_ ? SourcePoll::kHasMore : SourcePoll::kExhausted;
  }
  Status SnapshotState(BinaryWriter* w) const override {
    w->WriteU64(pos_);
    return Status::Ok();
  }
  Status RestoreState(BinaryReader* r) override {
    auto pos = r->ReadU64();
    if (!pos.ok()) return pos.status();
    pos_ = *pos;
    return Status::Ok();
  }
  std::string Name() const override { return "recovery_source"; }

 private:
  uint64_t total_;
  std::atomic<uint64_t>* emitted_;
  uint64_t pos_ = 0;
};

struct RecoveryResult {
  double seconds = 0;
  uint64_t emitted = 0;
  int restarts = 0;
};

RecoveryResult RunRecovery(int64_t checkpoint_interval_ms, bool inject) {
  auto emitted = std::make_shared<std::atomic<uint64_t>>(0);
  Environment env(2);
  auto sink = std::make_shared<NullSink>();
  env.FromSource("events",
                 [emitted](int, int) -> std::unique_ptr<SourceFunction> {
                   return std::make_unique<RecoverySource>(kRecoveryRecords,
                                                           emitted.get());
                 },
                 1)
      .KeyBy(0)
      .Window(std::make_shared<SlidingWindowFn>(60'000, 5'000))
      .Aggregate(DynAggKind::kSum, 1)
      .Sink(sink);
  JobOptions opts;
  opts.checkpoint_interval_ms = checkpoint_interval_ms;
  if (inject) {
    auto injector = std::make_shared<FaultInjector>();
    injector->AddRule(FaultInjector::FailAtHit("source:events",
                                               kRecoveryRecords / 2));
    opts.fault_injector = injector;
  }
  RestartPolicy policy;
  policy.max_restarts = 3;
  policy.initial_backoff_ms = 1;
  SupervisionStats stats;
  Stopwatch sw;
  STREAMLINE_CHECK_OK(env.ExecuteSupervised(opts, policy, &stats));
  RecoveryResult out;
  out.seconds = sw.ElapsedSeconds();
  out.emitted = emitted->load();
  out.restarts = stats.restarts;
  return out;
}

// --- Incremental vs full checkpoints (state size x mutation rate) -------

/// Source gated on an external allowance so checkpoints land at exact
/// stream positions: epoch 1 populates `keys` distinct keys, epoch 2
/// mutates `mutations` of them.
class GatedKeyedSource : public SourceFunction {
 public:
  GatedKeyedSource(std::atomic<uint64_t>* allowed, uint64_t keys,
                   uint64_t total)
      : allowed_(allowed), keys_(keys), total_(total) {}

  Result<SourcePoll> Poll(SourceContext* ctx) override {
    if (pos_ >= total_) return SourcePoll::kExhausted;
    if (allowed_->load(std::memory_order_acquire) <= pos_) {
      return SourcePoll::kIdle;
    }
    const int64_t key = pos_ < keys_
                            ? static_cast<int64_t>(pos_)
                            : static_cast<int64_t>(((pos_ - keys_) * 7) %
                                                   keys_);
    Record r = MakeRecord(static_cast<Timestamp>(pos_), Value(key),
                          Value(static_cast<int64_t>(pos_)));
    const Timestamp ts = r.timestamp;
    if (!ctx->Emit(std::move(r))) return SourcePoll::kExhausted;
    ++pos_;
    ctx->EmitWatermark(ts);
    return SourcePoll::kHasMore;
  }
  Status SnapshotState(BinaryWriter* w) const override {
    w->WriteU64(pos_);
    return Status::Ok();
  }
  Status RestoreState(BinaryReader* r) override {
    auto pos = r->ReadU64();
    if (!pos.ok()) return pos.status();
    pos_ = *pos;
    return Status::Ok();
  }
  std::string Name() const override { return "gated_keyed"; }

 private:
  std::atomic<uint64_t>* allowed_;
  uint64_t keys_;
  uint64_t total_;
  uint64_t pos_ = 0;
};

struct SweepResult {
  uint64_t cp_bytes = 0;        // bytes the mutation-epoch checkpoint cost
  double barrier_stall_s = 0;   // trigger -> complete for that checkpoint
  double recovery_s = 0;        // restoring a job from that checkpoint
};

std::shared_ptr<CollectSink> BuildSweepJob(
    Environment* env, std::shared_ptr<std::atomic<uint64_t>> allowed,
    uint64_t keys, uint64_t total) {
  return env
      ->FromSource("events",
                   [allowed, keys,
                    total](int, int) -> std::unique_ptr<SourceFunction> {
                     return std::make_unique<GatedKeyedSource>(allowed.get(),
                                                               keys, total);
                   },
                   1)
      .KeyBy(0)
      .Reduce([](const Record& acc, const Record& in) {
        Record out = acc;
        out.fields[1] = Value(acc.field(1).AsInt64() + in.field(1).AsInt64());
        return out;
      })
      .Collect();
}

SweepResult RunSweep(uint64_t keys, uint64_t mutations, bool incremental) {
  namespace fs = std::filesystem;
  const std::string dir =
      (fs::temp_directory_path() / "slss_bench_e6_inc").string();
  fs::remove_all(dir);
  const uint64_t total = keys + mutations + 8;  // tail keeps the source live

  auto allowed = std::make_shared<std::atomic<uint64_t>>(0);
  Environment env;
  auto sink = BuildSweepJob(&env, allowed, keys, total);
  JobOptions opts;
  std::shared_ptr<IncrementalSnapshotStore> inc_store;
  if (incremental) {
    inc_store = std::make_shared<IncrementalSnapshotStore>(dir);
    opts.snapshot_store = inc_store;
    opts.incremental_checkpoints = true;
    opts.changelog_compaction_bytes = 1u << 30;  // keep the epoch a delta
  } else {
    opts.snapshot_store = std::make_shared<FileSnapshotStore>(dir);
  }
  auto job = Job::Create(*env.graph(), opts);
  STREAMLINE_CHECK(job.ok());
  STREAMLINE_CHECK_OK((*job)->Start());

  auto wait_sink = [&](uint64_t n) {
    while (sink->size() < n) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  allowed->store(keys, std::memory_order_release);
  wait_sink(keys);
  const uint64_t cp_base = (*job)->TriggerCheckpoint();
  allowed->store(keys + mutations, std::memory_order_release);
  STREAMLINE_CHECK((*job)->AwaitCheckpoint(cp_base, 60.0));
  wait_sink(keys + mutations);

  Stopwatch stall;
  const uint64_t cp = (*job)->TriggerCheckpoint();
  allowed->store(total, std::memory_order_release);
  STREAMLINE_CHECK((*job)->AwaitCheckpoint(cp, 60.0));
  SweepResult out;
  out.barrier_stall_s = stall.ElapsedSeconds();
  STREAMLINE_CHECK_OK((*job)->AwaitCompletion());
  out.cp_bytes = incremental ? inc_store->BytesWrittenFor(cp)
                             : opts.snapshot_store->TotalBytes(cp);

  // Recovery: rebuild the job from that checkpoint (full restore vs base +
  // changelog replay happens inside Job::Create).
  {
    auto allowed2 = std::make_shared<std::atomic<uint64_t>>(total);
    Environment env2;
    BuildSweepJob(&env2, allowed2, keys, total);
    JobOptions ropts = opts;
    ropts.restore_from_checkpoint = cp;
    Stopwatch rec;
    auto restored = Job::Create(*env2.graph(), ropts);
    STREAMLINE_CHECK(restored.ok());
    out.recovery_s = rec.ElapsedSeconds();
    STREAMLINE_CHECK_OK((*restored)->Run());
  }
  fs::remove_all(dir);
  return out;
}

void RunIncrementalSweep(bench::JsonReport* report) {
  std::printf(
      "Incremental vs full checkpoints: keyed-reduce state, second "
      "checkpoint taken after mutating a fraction of the keys.\n\n");
  Table table({"keys", "mutated", "full bytes", "incr bytes", "reduction",
               "stall full", "stall incr", "recover full", "recover incr"});
  for (uint64_t keys : {10'000u, 100'000u}) {
    for (double rate : {0.01, 0.10, 0.50}) {
      const uint64_t mutations = static_cast<uint64_t>(keys * rate);
      const SweepResult full = RunSweep(keys, mutations, false);
      const SweepResult inc = RunSweep(keys, mutations, true);
      const double reduction =
          static_cast<double>(full.cp_bytes) /
          static_cast<double>(std::max<uint64_t>(inc.cp_bytes, 1));
      table.AddRow({bench::Count(static_cast<double>(keys)),
                    Fmt("%.0f%%", rate * 100.0), bench::Bytes(full.cp_bytes),
                    bench::Bytes(inc.cp_bytes), Fmt("%.1fx", reduction),
                    Fmt("%.1f ms", full.barrier_stall_s * 1e3),
                    Fmt("%.1f ms", inc.barrier_stall_s * 1e3),
                    Fmt("%.1f ms", full.recovery_s * 1e3),
                    Fmt("%.1f ms", inc.recovery_s * 1e3)});
      const std::string tag =
          Fmt("%lluk_%.0fpct", static_cast<unsigned long long>(keys / 1000),
              rate * 100.0);
      report->Add("inc_full_bytes_" + tag, full.cp_bytes);
      report->Add("inc_delta_bytes_" + tag, inc.cp_bytes);
      report->Add("inc_reduction_x_" + tag, reduction);
      report->Add("inc_stall_full_ms_" + tag, full.barrier_stall_s * 1e3);
      report->Add("inc_stall_incr_ms_" + tag, inc.barrier_stall_s * 1e3);
      report->Add("inc_recovery_full_ms_" + tag, full.recovery_s * 1e3);
      report->Add("inc_recovery_incr_ms_" + tag, inc.recovery_s * 1e3);
    }
  }
  table.Print();
}

void Run() {
  bench::Header(
      "E6: asynchronous barrier snapshotting overhead (keyed window job)",
      "Checkpointing on the pipelined engine costs little at practical "
      "intervals and degrades gracefully as the interval shrinks");

  bench::JsonReport report("BENCH_E6.json");
  Table table({"interval", "throughput", "overhead", "completed",
               "state size"});
  const RunResult base = RunOne(0);
  table.AddRow({"off", bench::Rate(kRecords, base.seconds), "-", "-", "-"});
  report.Add("throughput_off_rps", kRecords / base.seconds);
  for (int64_t interval : {1000, 100, 20, 5}) {
    const RunResult r = RunOne(interval);
    table.AddRow({Fmt("%lld ms", static_cast<long long>(interval)),
                  bench::Rate(kRecords, r.seconds),
                  Fmt("%.1f%%", (r.seconds / base.seconds - 1.0) * 100.0),
                  Fmt("%llu", static_cast<unsigned long long>(r.checkpoints)),
                  bench::Bytes(r.state_bytes)});
    report.Add(Fmt("throughput_%lldms_rps", static_cast<long long>(interval)),
               kRecords / r.seconds);
    report.Add(Fmt("overhead_%lldms_pct", static_cast<long long>(interval)),
               (r.seconds / base.seconds - 1.0) * 100.0);
  }
  table.Print();

  std::printf(
      "Recovery: supervised job, source killed at record %llu, restarted "
      "from the latest complete checkpoint (interval 10 ms).\n\n",
      static_cast<unsigned long long>(kRecoveryRecords / 2));
  const RecoveryResult clean = RunRecovery(10, /*inject=*/false);
  const RecoveryResult faulted = RunRecovery(10, /*inject=*/true);
  const uint64_t replayed = faulted.emitted - kRecoveryRecords;
  Table rec({"run", "wall time", "restarts", "records replayed",
             "replay fraction"});
  rec.AddRow({"fault-free", Fmt("%.3f s", clean.seconds), "0", "-", "-"});
  rec.AddRow({"1 crash", Fmt("%.3f s", faulted.seconds),
              Fmt("%d", faulted.restarts),
              bench::Count(static_cast<double>(replayed)),
              Fmt("%.2f%%", 100.0 * static_cast<double>(replayed) /
                                static_cast<double>(kRecoveryRecords))});
  rec.Print();
  report.Add("recovery_baseline_seconds", clean.seconds);
  report.Add("recovery_faulted_seconds", faulted.seconds);
  report.Add("recovery_overhead_seconds", faulted.seconds - clean.seconds);
  report.Add("recovery_restarts", static_cast<uint64_t>(faulted.restarts));
  report.Add("recovery_records_replayed", replayed);

  RunIncrementalSweep(&report);
  report.Write();
}

}  // namespace
}  // namespace streamline

int main() {
  streamline::Run();
  return 0;
}
