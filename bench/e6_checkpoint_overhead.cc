// E6 -- checkpointing overhead on the pipelined engine.
//
// Operationalizes the engine-robustness dimension STREAMLINE inherits from
// its Flink foundation [Carbone et al. 2015]: asynchronous barrier
// snapshotting adds little overhead at practical intervals and degrades
// gracefully as the interval shrinks.

#include <memory>

#include "api/datastream.h"
#include "bench/harness.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

constexpr uint64_t kRecords = 6'000'000;

struct RunResult {
  double seconds = 0;
  uint64_t checkpoints = 0;
  uint64_t state_bytes = 0;
};

RunResult RunOne(int64_t checkpoint_interval_ms) {
  Environment env(2);
  auto sink = std::make_shared<NullSink>();
  env.FromGenerator(
         "events",
         [](uint64_t seq) -> std::optional<Record> {
           if (seq >= kRecords) return std::nullopt;
           return MakeRecord(static_cast<Timestamp>(seq),
                             Value(static_cast<int64_t>(seq % 256)),
                             Value(static_cast<double>(seq % 131)));
         })
      .KeyBy(0)
      .Window(std::make_shared<SlidingWindowFn>(60'000, 5'000))
      .Aggregate(DynAggKind::kSum, 1)
      .Sink(sink);
  JobOptions opts;
  if (checkpoint_interval_ms > 0) {
    opts.snapshot_store = std::make_shared<SnapshotStore>();
    opts.checkpoint_interval_ms = checkpoint_interval_ms;
  }
  auto job = Job::Create(*env.graph(), opts);
  STREAMLINE_CHECK(job.ok());
  Stopwatch sw;
  STREAMLINE_CHECK_OK((*job)->Run());
  RunResult out;
  out.seconds = sw.ElapsedSeconds();
  if (opts.snapshot_store) {
    out.checkpoints = (*job)->LatestCompletedCheckpoint();
    if (out.checkpoints > 0) {
      out.state_bytes = opts.snapshot_store->TotalBytes(out.checkpoints);
    }
  }
  return out;
}

void Run() {
  bench::Header(
      "E6: asynchronous barrier snapshotting overhead (keyed window job)",
      "Checkpointing on the pipelined engine costs little at practical "
      "intervals and degrades gracefully as the interval shrinks");

  Table table({"interval", "throughput", "overhead", "completed",
               "state size"});
  const RunResult base = RunOne(0);
  table.AddRow({"off", bench::Rate(kRecords, base.seconds), "-", "-", "-"});
  for (int64_t interval : {1000, 100, 20, 5}) {
    const RunResult r = RunOne(interval);
    table.AddRow({Fmt("%lld ms", static_cast<long long>(interval)),
                  bench::Rate(kRecords, r.seconds),
                  Fmt("%.1f%%", (r.seconds / base.seconds - 1.0) * 100.0),
                  Fmt("%llu", static_cast<unsigned long long>(r.checkpoints)),
                  bench::Bytes(r.state_bytes)});
  }
  table.Print();
}

}  // namespace
}  // namespace streamline

int main() {
  streamline::Run();
  return 0;
}
