// E5 -- the unified pipelined engine: batch == streaming, parallel scaling.
//
// Operationalizes: "a single uniform programming model that can
// automatically be optimized, parallelized ..." on "a single pipelined
// execution engine" (STREAMLINE, Sec. 1). The same pipeline runs over data
// at rest (bounded vector source) and data in motion (bounded generator
// standing in for a stream), and keyed work scales with parallelism.

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "api/datastream.h"
#include "bench/harness.h"
#include "common/random.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

constexpr uint64_t kRecords = 2'000'000;

Record MakeEvent(uint64_t i) {
  return MakeRecord(static_cast<Timestamp>(i),
                    Value(static_cast<int64_t>(i % 1024)),
                    Value(static_cast<double>(i % 97)));
}

double RunChainedPipeline(bool batch, size_t batch_size = 256) {
  Environment env;
  DataStream source = [&] {
    if (batch) {
      std::vector<Record> records;
      records.reserve(kRecords);
      for (uint64_t i = 0; i < kRecords; ++i) records.push_back(MakeEvent(i));
      return env.FromRecords(std::move(records), "at-rest");
    }
    return env.FromGenerator(
        "in-motion",
        [](uint64_t seq) -> std::optional<Record> {
          if (seq >= kRecords) return std::nullopt;
          return MakeEvent(seq);
        });
  }();
  auto sink = std::make_shared<NullSink>();
  source
      .Map([](Record&& r) {
        r.fields[1] = Value(r.field(1).AsDouble() * 1.5 + 1.0);
        return std::move(r);
      })
      .Filter([](const Record& r) { return r.field(1).AsDouble() > 10.0; })
      .Sink(sink);
  // Time execution only: plan building and source materialization are
  // setup, not pipeline throughput.
  JobOptions options;
  options.batch_size = batch_size;
  auto job = env.CreateJob(options);
  STREAMLINE_CHECK(job.ok());
  Stopwatch sw;
  STREAMLINE_CHECK_OK((*job)->Run());
  return sw.ElapsedSeconds();
}

// `workers` sizes the scheduler's worker pool (0 = hardware concurrency);
// when `report` is set, the job's scheduler.* gauges are copied into it
// under `sched_prefix`.
double RunKeyedReduce(int parallelism, size_t workers = 0,
                      bench::JsonReport* report = nullptr,
                      const std::string& sched_prefix = "") {
  Environment env(parallelism);
  std::vector<Record> records;
  records.reserve(kRecords);
  for (uint64_t i = 0; i < kRecords; ++i) records.push_back(MakeEvent(i));
  auto sink = std::make_shared<NullSink>();
  env.FromRecords(std::move(records), "events")
      .KeyBy(0)
      .Reduce([](const Record& acc, const Record& in) {
        Record out = acc;
        out.fields[1] =
            Value(acc.field(1).AsDouble() + in.field(1).AsDouble());
        return out;
      })
      .Sink(sink);
  JobOptions options;
  options.worker_threads = workers;
  auto job = env.CreateJob(options);
  STREAMLINE_CHECK(job.ok());
  Stopwatch sw;
  STREAMLINE_CHECK_OK((*job)->Run());
  const double secs = sw.ElapsedSeconds();
  if (report != nullptr) {
    bench::AddSchedulerGauges(*report, sched_prefix, (*job)->metrics());
  }
  return secs;
}

// End-to-end record latency through a real channel: each record carries
// its emit time (steady-clock ns) in a field, the sink records the delta.
// Rebalance(1) forces the record across an SPSC channel, so the number
// includes output batching, ring transfer and the consumer poll loop.
std::pair<double, double> RunLatencyProbe() {
  constexpr uint64_t kProbeRecords = 200'000;
  auto hist = std::make_shared<Histogram>();
  Environment env;
  env.FromGenerator(
         "latency-probe",
         [](uint64_t seq) -> std::optional<Record> {
           if (seq >= kProbeRecords) return std::nullopt;
           const int64_t now_ns =
               std::chrono::duration_cast<std::chrono::nanoseconds>(
                   std::chrono::steady_clock::now().time_since_epoch())
                   .count();
           return MakeRecord(static_cast<Timestamp>(seq), Value(now_ns));
         })
      .Rebalance(1)
      .Sink(std::make_shared<CallbackSink>([hist](const Record& r) {
        const int64_t now_ns =
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count();
        const double us =
            static_cast<double>(now_ns - r.field(0).AsInt64()) / 1e3;
        hist->Record(us);
      }));
  STREAMLINE_CHECK_OK(env.Execute());
  return {hist->Quantile(0.5), hist->Quantile(0.99)};
}

void Run() {
  bench::Header(
      "E5: unified engine -- batch vs streaming, parallel scaling",
      "One pipelined engine executes data at rest and data in motion; "
      "keyed pipelines parallelize across subtasks");

  bench::JsonReport report("BENCH_E5.json");
  report.AddString("bench", "e5_engine_pipeline");
  report.Add("records", static_cast<uint64_t>(kRecords));

  // The headline rows are best-of-3: single runs on a busy single-core
  // host swing by double-digit percents, and the best run is the closest
  // estimate of the engine's steady-state rate.
  const auto best_of = [](auto&& fn, int reps = 3) {
    double best = fn();
    for (int i = 1; i < reps; ++i) best = std::min(best, fn());
    return best;
  };

  {
    Table table({"mode", "pipeline", "records", "throughput"});
    const double batch_s = best_of([] { return RunChainedPipeline(true); });
    const double stream_s = best_of([] { return RunChainedPipeline(false); });
    table.AddRow({"data at rest", "map->filter (fused chain)",
                  bench::Count(kRecords),
                  bench::Rate(kRecords, batch_s)});
    table.AddRow({"data in motion", "map->filter (fused chain)",
                  bench::Count(kRecords),
                  bench::Rate(kRecords, stream_s)});
    table.Print();
    report.Add("at_rest_records_per_sec",
               static_cast<double>(kRecords) / batch_s);
    report.Add("in_motion_records_per_sec",
               static_cast<double>(kRecords) / stream_s);
  }

  {
    // batch_size sweep: 1 is the per-record path (one virtual ProcessRecord
    // call per record per hop), larger sizes amortize dispatch over whole
    // batches. In-motion batches are additionally cut by the source's
    // watermark cadence (every 64 records).
    Table table({"batch_size", "at rest", "in motion"});
    for (size_t bs : {1u, 16u, 64u, 256u, 1024u}) {
      const double rest_s = RunChainedPipeline(true, bs);
      const double motion_s = RunChainedPipeline(false, bs);
      table.AddRow({Fmt("%zu", bs), bench::Rate(kRecords, rest_s),
                    bench::Rate(kRecords, motion_s)});
      report.Add(Fmt("at_rest_bs%zu_records_per_sec", bs),
                 static_cast<double>(kRecords) / rest_s);
      report.Add(Fmt("in_motion_bs%zu_records_per_sec", bs),
                 static_cast<double>(kRecords) / motion_s);
    }
    table.Print();
  }

  {
    const auto [p50_us, p99_us] = RunLatencyProbe();
    Table table({"probe", "records", "p50 latency", "p99 latency"});
    table.AddRow({"source->channel->sink", bench::Count(200'000),
                  Fmt("%.1f us", p50_us), Fmt("%.1f us", p99_us)});
    table.Print();
    report.Add("latency_p50_us", p50_us);
    report.Add("latency_p99_us", p99_us);
  }

  {
    const unsigned cores = std::thread::hardware_concurrency();
    std::printf(
        "Host has %u hardware thread(s). Wall-clock speedup beyond that "
        "core count is physically impossible; on a single-core host this "
        "table measures the engine's parallel-coordination overhead "
        "instead (correctness at parallelism 8 is covered by the test "
        "suite).\n\n",
        cores);
    Table table({"parallelism", "pipeline", "records", "throughput",
                 "vs p=1"});
    double base = 0;
    for (int p : {1, 2, 4, 8}) {
      const double secs = RunKeyedReduce(p);
      if (p == 1) base = secs;
      report.Add(Fmt("keyed_p%d_records_per_sec", p),
                 static_cast<double>(kRecords) / secs);
      table.AddRow({Fmt("%d", p), "key_by->reduce", bench::Count(kRecords),
                    bench::Rate(kRecords, secs),
                    Fmt("%.2fx", base / secs)});
    }
    table.Print();
  }

  {
    // Worker sweep: the same keyed job at parallelism 8 -- eight logical
    // key-groups -- multiplexed over scheduler pools of different sizes.
    // On a single-core host wall-clock stays ~flat (the interesting datum
    // is the coordination overhead of extra workers); the scheduler
    // counters recorded per row show where morsels actually ran.
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<size_t> sweep = {1, 2, 4};
    if (std::find(sweep.begin(), sweep.end(), static_cast<size_t>(hw)) ==
        sweep.end()) {
      sweep.push_back(hw);
    }
    Table table({"workers", "pipeline", "throughput", "vs w=1"});
    double base = 0;
    for (size_t w : sweep) {
      const double secs =
          RunKeyedReduce(8, w, &report, Fmt("keyed_p8_w%zu_sched_", w));
      if (w == 1) base = secs;
      report.Add(Fmt("keyed_p8_w%zu_records_per_sec", w),
                 static_cast<double>(kRecords) / secs);
      table.AddRow({Fmt("%zu%s", w, w == hw ? " (hw)" : ""),
                    "key_by->reduce (p=8)", bench::Rate(kRecords, secs),
                    Fmt("%.2fx", base / secs)});
    }
    table.Print();
  }

  report.Write();
}

}  // namespace
}  // namespace streamline

int main() {
  streamline::Run();
  return 0;
}
