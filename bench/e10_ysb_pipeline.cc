// E10 -- end-to-end "Yahoo Streaming Benchmark"-style job, plus the
// network-buffer ablation.
//
// The canonical engine-level streaming benchmark shape: read ad events
// from a partitioned log, filter to views, enrich ad -> campaign against a
// static table, and count per campaign in tumbling event-time windows.
// Exercises every engine layer at once (log source with per-partition
// offsets/watermarks, chained filter/map, hash shuffle, windowed state).
// The second table ablates the channel batch size -- the design choice
// that amortizes mailbox synchronization ("network buffers").

#include <algorithm>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/datastream.h"
#include "bench/harness.h"
#include "common/random.h"
#include "dataflow/event_log.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

constexpr uint64_t kEvents = 2'000'000;
constexpr int kAds = 1000;
constexpr int kCampaigns = 100;

std::shared_ptr<EventLog> BuildLog(int partitions) {
  auto log = std::make_shared<EventLog>(partitions);
  Rng rng(71);
  for (uint64_t i = 0; i < kEvents; ++i) {
    // [ad_id, event_type] -- ~1/3 of events are views.
    Record r = MakeRecord(
        static_cast<Timestamp>(i / 10),  // 10 events per ms
        Value(static_cast<int64_t>(rng.NextBelow(kAds))),
        Value(static_cast<int64_t>(rng.NextBelow(3))));
    log->Append(static_cast<int>(i % partitions), std::move(r));
  }
  log->Close();
  return log;
}

// `workers` sizes the scheduler's worker pool (0 = hardware concurrency);
// when `report` is set, the job's scheduler.* gauges are copied into it
// under `sched_prefix`.
double RunYsb(const std::shared_ptr<EventLog>& log, size_t batch_size,
              size_t workers = 0, bench::JsonReport* report = nullptr,
              const std::string& sched_prefix = "") {
  // Static ad -> campaign dimension table (the YSB "join").
  auto table = std::make_shared<std::unordered_map<int64_t, int64_t>>();
  for (int ad = 0; ad < kAds; ++ad) {
    (*table)[ad] = ad % kCampaigns;
  }
  Environment env(2);
  auto sink = std::make_shared<NullSink>();
  env.FromSource("ad-log", LogSource::Factory(log, /*watermark_every=*/256),
                 2)
      .Filter([](const Record& r) { return r.field(1).AsInt64() == 0; },
              "views-only")
      .Map(
          [table](Record&& r) {
            r.fields[1] = Value((*table)[r.field(0).AsInt64()]);
            return std::move(r);
          },
          "join-campaign")
      .KeyBy(1)
      .Window(std::make_shared<TumblingWindowFn>(10'000))
      .Aggregate(DynAggKind::kCount, 0)
      .Sink(sink);
  JobOptions opts;
  opts.batch_size = batch_size;
  opts.worker_threads = workers;
  auto job = env.CreateJob(opts);
  STREAMLINE_CHECK(job.ok());
  Stopwatch sw;
  STREAMLINE_CHECK_OK((*job)->Run());
  const double secs = sw.ElapsedSeconds();
  if (report != nullptr) {
    bench::AddSchedulerGauges(*report, sched_prefix, (*job)->metrics());
  }
  return secs;
}

void Run() {
  bench::Header(
      "E10: YSB-style end-to-end job (log -> filter -> join -> window)",
      "The full engine stack sustains millions of events/s on the "
      "canonical ad-analytics pipeline; channel batching is what pays for "
      "the shuffle");

  bench::JsonReport report("BENCH_E10.json");
  report.AddString("bench", "e10_ysb_pipeline");
  report.Add("events", static_cast<uint64_t>(kEvents));

  auto log = BuildLog(4);
  {
    Table table({"pipeline", "events", "throughput"});
    const double secs = RunYsb(log, 256);
    table.AddRow({"filter->join->window (p=2)", bench::Count(kEvents),
                  bench::Rate(static_cast<double>(kEvents), secs)});
    table.Print();
    report.Add("ysb_p2_events_per_sec", static_cast<double>(kEvents) / secs);
  }
  {
    std::printf("Ablation: channel batch size (network buffers)\n\n");
    Table table({"batch size", "throughput", "vs batch=256"});
    double base = 0;
    for (size_t batch : {256, 16, 1}) {
      const double secs = RunYsb(log, batch);
      if (batch == 256) base = secs;
      table.AddRow({Fmt("%zu", batch),
                    bench::Rate(static_cast<double>(kEvents), secs),
                    Fmt("%.2fx", base / secs)});
      report.Add(Fmt("batch_%zu_events_per_sec", batch),
                 static_cast<double>(kEvents) / secs);
    }
    table.Print();
  }
  {
    // Worker sweep: the full YSB job (4 log partitions, p=2 subtasks per
    // operator) over scheduler pools of {1,2,4,hw} workers. Scheduler
    // counters land in the JSON report per row.
    std::printf("Worker sweep (scheduler pool size)\n\n");
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    std::vector<size_t> sweep = {1, 2, 4};
    if (std::find(sweep.begin(), sweep.end(), static_cast<size_t>(hw)) ==
        sweep.end()) {
      sweep.push_back(hw);
    }
    Table table({"workers", "throughput", "vs w=1"});
    double base = 0;
    for (size_t w : sweep) {
      const double secs =
          RunYsb(log, 256, w, &report, Fmt("ysb_w%zu_sched_", w));
      if (w == 1) base = secs;
      report.Add(Fmt("ysb_w%zu_events_per_sec", w),
                 static_cast<double>(kEvents) / secs);
      table.AddRow({Fmt("%zu%s", w, w == hw ? " (hw)" : ""),
                    bench::Rate(static_cast<double>(kEvents), secs),
                    Fmt("%.2fx", base / secs)});
    }
    table.Print();
  }

  report.Write();
}

}  // namespace
}  // namespace streamline

int main() {
  streamline::Run();
  return 0;
}
