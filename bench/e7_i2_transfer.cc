// E7 -- I2's data-rate independent visualization transfer, measured on
// real sockets.
//
// Operationalizes: "an aggregation algorithm for time-series data, which
// reduces the amount of data in a data-rate independent manner"
// (STREAMLINE, Sec. 1 / I2, EDBT'17), plus the engine's network edge:
//
//   1. Reducer comparison (algorithmic): a fixed 1000-pixel viewport over
//      60 s of event time at increasing input rates; M4 transfers a
//      constant volume while raw/sampling grow linearly.
//   2. Socket ingest: wire frames over loopback TCP through the epoll
//      ingest path (decode on one net thread, SPSC hand-off) -- the
//      records/s a single net thread sustains.
//   3. Subscription fan-out: one Publish stream delivered to 1..N
//      subscribers; the shared-frame design makes per-subscriber cost an
//      enqueue, so total cost grows sub-linearly in N.
//   4. The I2 pixel stream over actual sockets: VizServer bound to a
//      SubscriptionServer; the transferred volume is real bytes counted
//      at the socket, not simulated accounting -- and stays ~constant
//      across a 100x input-rate sweep.
//
// Usage: e7_i2_transfer [ingest_records] [fanout_publishes] [max_subs]
// Results: human tables on stdout + machine-readable BENCH_E7.json.

#include <sys/resource.h>
#include <sys/socket.h>

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "net/event_loop.h"
#include "net/frame.h"
#include "net/socket.h"
#include "net/socket_source.h"
#include "net/subscription_server.h"
#include "viz/reducers.h"
#include "viz/server.h"
#include "workload/timeseries.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

constexpr int kViewportPx = 1000;
constexpr Duration kSpanMs = 60'000;  // 60 s of event time
constexpr Duration kColumnMs = kSpanMs / kViewportPx;

// ---------------------------------------------------------------------------
// Tier 1: per-column reducers (algorithmic comparison, in-process).

struct Measured {
  uint64_t points = 0;
  uint64_t bytes = 0;
  double seconds = 0;
  uint64_t input = 0;
};

Measured RunOne(SeriesReducer* reducer, double rate) {
  RandomWalkSeries walk(RateShape{rate, 0.3}, 0.0, 1.0, 21);
  const auto n = static_cast<uint64_t>(rate * 60);
  Measured out;
  out.input = n;
  Stopwatch sw;
  for (uint64_t i = 0; i < n; ++i) {
    const SeriesPoint p = walk.Next();
    reducer->OnElement(p.t, p.v);
  }
  reducer->OnWatermark(kMaxTimestamp);
  out.seconds = sw.ElapsedSeconds();
  out.points = reducer->points_transferred();
  out.bytes = reducer->bytes_transferred();
  return out;
}

void RunReducerTier(bench::JsonReport* report) {
  bench::Header(
      "E7a: transferred data vs input rate (1000 px viewport, 60 s span)",
      "I2's M4 aggregation reduces data in a data-rate independent manner: "
      "transfer stays ~constant while raw grows linearly");

  Table table({"rate", "reducer", "input", "points sent", "bytes sent",
               "reduction", "ingest rate"});
  for (double rate : {1'000.0, 10'000.0, 100'000.0, 1'000'000.0}) {
    std::vector<std::unique_ptr<SeriesReducer>> reducers;
    reducers.push_back(std::make_unique<RawReducer>());
    reducers.push_back(std::make_unique<EveryNthReducer>(100));
    reducers.push_back(std::make_unique<UniformSamplingReducer>(0.01));
    reducers.push_back(std::make_unique<PaaReducer>(kColumnMs));
    reducers.push_back(std::make_unique<MinMaxReducer>(kColumnMs));
    reducers.push_back(std::make_unique<M4Reducer>(kColumnMs));
    for (auto& reducer : reducers) {
      const Measured m = RunOne(reducer.get(), rate);
      table.AddRow(
          {Fmt("%.0fk ev/s", rate / 1000), reducer->Name(),
           bench::Count(static_cast<double>(m.input)),
           bench::Count(static_cast<double>(m.points)),
           bench::Bytes(m.bytes),
           Fmt("%.1fx", static_cast<double>(m.input) /
                            std::max<uint64_t>(m.points, 1)),
           bench::Rate(static_cast<double>(m.input), m.seconds)});
      if (reducer->Name() == std::string("m4")) {
        report->Add(Fmt("m4_bytes_rate_%.0f", rate), m.bytes);
      }
    }
  }
  table.Print();
}

// ---------------------------------------------------------------------------
// Tier 2: socket ingest throughput on one net thread.

struct IngestRun {
  double seconds = 0;
  uint64_t records = 0;
  uint64_t wire_bytes = 0;
  uint64_t pauses = 0;
};

IngestRun RunIngestOnce(uint64_t total, size_t batch) {
  net::EventLoop loop;
  net::IngestOptions options;
  options.ring_capacity = 128;
  auto created = net::SocketIngest::Create(&loop, options);
  if (!created.ok()) {
    std::fprintf(stderr, "ingest setup failed: %s\n",
                 created.status().ToString().c_str());
    std::exit(1);
  }
  std::shared_ptr<net::SocketIngest> ingest = std::move(*created);
  if (!loop.Start().ok()) std::exit(1);

  // Pre-encode the whole wire stream (producer-side cost is not what this
  // tier measures): [len][crc][type|count|records...] frames.
  std::string wire;
  {
    std::vector<Record> records;
    records.reserve(batch);
    for (uint64_t i = 0; i < total; i += batch) {
      records.clear();
      const uint64_t n = std::min<uint64_t>(batch, total - i);
      for (uint64_t j = 0; j < n; ++j) {
        const uint64_t k = i + j;
        records.push_back(MakeRecord(static_cast<Timestamp>(k),
                                     Value(static_cast<int64_t>(k % 64)),
                                     Value(static_cast<double>(k))));
      }
      wire += net::EncodeDataBatch(records.data(), records.size());
    }
  }

  Stopwatch sw;
  std::thread producer([&] {
    auto conn = net::TcpConnect(ingest->port());
    if (!conn.ok()) return;
    constexpr size_t kChunk = 256u << 10;
    for (size_t off = 0; off < wire.size(); off += kChunk) {
      const size_t n = std::min(kChunk, wire.size() - off);
      if (!net::SendAll(conn->get(), wire.data() + off, n).ok()) return;
    }
  });

  IngestRun out;
  std::vector<Record> popped;
  while (!ingest->Finished()) {
    if (ingest->PopBatch(&popped)) {
      out.records += popped.size();
      ingest->RecycleBatch(std::move(popped));
      popped = std::vector<Record>();
    } else {
      std::this_thread::yield();
    }
  }
  out.seconds = sw.ElapsedSeconds();
  producer.join();
  const auto stats = ingest->stats();
  out.wire_bytes = stats.bytes;
  out.pauses = stats.pauses;
  loop.Stop();
  if (out.records != total) {
    std::fprintf(stderr, "ingest lost records: %llu != %llu\n",
                 static_cast<unsigned long long>(out.records),
                 static_cast<unsigned long long>(total));
    std::exit(1);
  }
  return out;
}

void RunIngestTier(uint64_t total, bench::JsonReport* report) {
  bench::Header(
      "E7b: loopback socket ingest (epoll net thread -> SPSC -> consumer)",
      "the zero-copy framed wire path sustains >= 1M records/s of ingest "
      "decode on a single net thread");

  Table table({"batch", "records", "wire bytes", "pauses", "ingest rate"});
  double best_rate = 0;
  for (size_t batch : {64u, 256u, 1024u}) {
    const IngestRun r = RunIngestOnce(total, batch);
    const double rate = static_cast<double>(r.records) / r.seconds;
    best_rate = std::max(best_rate, rate);
    table.AddRow({Fmt("%zu", batch),
                  bench::Count(static_cast<double>(r.records)),
                  bench::Bytes(r.wire_bytes),
                  Fmt("%llu", static_cast<unsigned long long>(r.pauses)),
                  bench::Rate(static_cast<double>(r.records), r.seconds)});
    report->Add(Fmt("ingest_batch%zu_records_per_sec", batch), rate);
    report->Add(Fmt("ingest_batch%zu_pauses", batch), r.pauses);
  }
  table.Print();
  report->Add("ingest_records_per_sec", best_rate);
}

// ---------------------------------------------------------------------------
// Tier 3: subscription fan-out sweep.

struct FanoutRun {
  double seconds = 0;
  uint64_t frames_sent = 0;
  uint64_t bytes_sent = 0;
};

/// Drains `fds` (non-blocking) until each has received `expected` bytes.
void DrainClients(const std::vector<int>& fds, size_t expected,
                  std::atomic<bool>* failed) {
  std::vector<size_t> got(fds.size(), 0);
  size_t done = 0;
  char buf[64 << 10];
  while (done < fds.size()) {
    bool progressed = false;
    for (size_t i = 0; i < fds.size(); ++i) {
      if (got[i] >= expected) continue;
      const ssize_t r = ::recv(fds[i], buf, sizeof(buf), MSG_DONTWAIT);
      if (r > 0) {
        got[i] += static_cast<size_t>(r);
        if (got[i] >= expected) ++done;
        progressed = true;
      } else if (r == 0 || (r < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                            errno != EINTR)) {
        failed->store(true);
        return;
      }
    }
    if (!progressed) std::this_thread::yield();
  }
}

FanoutRun RunFanoutOnce(int subs, int publishes) {
  net::EventLoop loop;
  auto created =
      net::SubscriptionServer::Create(&loop, net::SubscriptionServer::Options{});
  if (!created.ok()) std::exit(1);
  auto server = std::move(*created);
  if (!server->RegisterTopic("results", /*key_field=*/0).ok()) std::exit(1);
  if (!loop.Start().ok()) std::exit(1);

  const std::string sub = net::EncodeSubscribe("results");
  std::vector<net::Fd> clients;
  clients.reserve(subs);
  for (int i = 0; i < subs; ++i) {
    auto conn = net::TcpConnect(server->port());
    if (!conn.ok()) {
      std::fprintf(stderr, "connect %d/%d failed: %s\n", i, subs,
                   conn.status().ToString().c_str());
      std::exit(1);
    }
    if (!net::SendAll(conn->get(), sub.data(), sub.size()).ok()) std::exit(1);
    net::SetNonBlocking(conn->get()).IgnoreError("drain loop handles EAGAIN");
    clients.push_back(std::move(*conn));
  }
  while (server->stats().snapshots_served < static_cast<uint64_t>(subs)) {
    std::this_thread::yield();
  }

  // All published records share one shape, so expected bytes per client
  // are exact: empty snapshot bracket + `publishes` identical-size frames.
  const Record sample =
      MakeRecord(0, Value(int64_t{0}), Value(0.0));
  const size_t data_frame_bytes = net::EncodeDataBatch(&sample, 1).size();
  const size_t control_frame_bytes =
      net::EncodeControl(net::kMsgSnapshotBegin).size();
  const size_t expected =
      2 * control_frame_bytes +
      static_cast<size_t>(publishes) * data_frame_bytes;

  const int drain_threads = std::min(subs, 4);
  std::vector<std::vector<int>> slices(drain_threads);
  for (int i = 0; i < subs; ++i) {
    slices[i % drain_threads].push_back(clients[i].get());
  }
  std::atomic<bool> failed{false};
  std::vector<std::thread> drainers;
  drainers.reserve(drain_threads);

  Stopwatch sw;
  for (int t = 0; t < drain_threads; ++t) {
    drainers.emplace_back(
        [&, t] { DrainClients(slices[t], expected, &failed); });
  }
  for (int i = 0; i < publishes; ++i) {
    server->Publish("results",
                    MakeRecord(i, Value(int64_t{i % 64}),
                               Value(static_cast<double>(i))));
  }
  for (auto& t : drainers) t.join();
  FanoutRun out;
  out.seconds = sw.ElapsedSeconds();
  if (failed.load()) {
    std::fprintf(stderr, "fan-out drain failed (subs=%d)\n", subs);
    std::exit(1);
  }
  const auto stats = server->stats();
  out.frames_sent = stats.frames_sent;
  out.bytes_sent = stats.bytes_sent;
  loop.Stop();
  return out;
}

void RunFanoutTier(int publishes, int max_subs, bench::JsonReport* report) {
  bench::Header(
      "E7c: subscription fan-out (one Publish stream, N loopback clients)",
      "frames are encoded once and shared; per-subscriber cost is an "
      "enqueue, so total fan-out cost grows sub-linearly in N");

  Table table({"subs", "publishes", "frames sent", "bytes sent", "seconds",
               "deliveries/s", "s per sub"});
  double t1 = 0;
  double t_last = 0;
  int last_subs = 1;
  for (int subs : {1, 10, 100, 1000}) {
    if (subs > max_subs) break;
    const FanoutRun r = RunFanoutOnce(subs, publishes);
    const double deliveries =
        static_cast<double>(subs) * static_cast<double>(publishes);
    table.AddRow({Fmt("%d", subs), bench::Count(publishes),
                  bench::Count(static_cast<double>(r.frames_sent)),
                  bench::Bytes(r.bytes_sent), Fmt("%.3f", r.seconds),
                  bench::Rate(deliveries, r.seconds),
                  Fmt("%.5f", r.seconds / subs)});
    report->Add(Fmt("fanout_subs_%d_seconds", subs), r.seconds);
    report->Add(Fmt("fanout_subs_%d_deliveries_per_sec", subs),
                deliveries / r.seconds);
    if (subs == 1) t1 = r.seconds;
    t_last = r.seconds;
    last_subs = subs;
  }
  table.Print();
  if (t1 > 0 && last_subs > 1) {
    // < 1.0 means fanning out to N subscribers costs less than N
    // independent single-subscriber streams -- the sub-linearity claim.
    report->Add("fanout_sublinear_ratio",
                t_last / (static_cast<double>(last_subs) * t1));
    report->Add("fanout_max_subs", static_cast<uint64_t>(last_subs));
  }
}

// ---------------------------------------------------------------------------
// Tier 4: the I2 pixel stream over real sockets.

uint64_t RunVizWireOnce(double rate) {
  net::EventLoop loop;
  auto created =
      net::SubscriptionServer::Create(&loop, net::SubscriptionServer::Options{});
  if (!created.ok()) std::exit(1);
  auto server = std::move(*created);
  VizServer viz(kColumnMs, /*levels=*/3);
  if (!viz.BindNetwork(server.get(), "pixels").ok()) std::exit(1);
  if (!loop.Start().ok()) std::exit(1);

  auto conn = net::TcpConnect(server->port());
  if (!conn.ok()) std::exit(1);
  const std::string sub = net::EncodeSubscribe("pixels");
  if (!net::SendAll(conn->get(), sub.data(), sub.size()).ok()) std::exit(1);
  net::SetNonBlocking(conn->get()).IgnoreError("drain loop handles EAGAIN");
  while (server->stats().snapshots_served < 1) std::this_thread::yield();

  std::atomic<bool> stop{false};
  std::thread drainer([&] {
    char buf[64 << 10];
    while (!stop.load(std::memory_order_acquire)) {
      const ssize_t r = ::recv(conn->get(), buf, sizeof(buf), MSG_DONTWAIT);
      if (r <= 0) std::this_thread::yield();
    }
  });

  RandomWalkSeries walk(RateShape{rate, 0.3}, 0.0, 1.0, 21);
  const auto n = static_cast<uint64_t>(rate * 60);
  for (uint64_t i = 0; i < n; ++i) {
    const SeriesPoint p = walk.Next();
    viz.OnElement(p.t, p.v);
    if ((i + 1) % 8192 == 0) viz.OnWatermark(p.t);
  }
  viz.Flush();
  while (server->TotalQueuedBytes() > 0) std::this_thread::yield();
  stop.store(true, std::memory_order_release);
  drainer.join();
  const uint64_t wire_bytes = server->stats().bytes_sent;
  loop.Stop();
  return wire_bytes;
}

void RunVizWireTier(bench::JsonReport* report) {
  bench::Header(
      "E7d: I2 pixel stream over real sockets (VizServer -> subscription)",
      "actual bytes on the wire for the followed M4 pixel stream are "
      "data-rate independent: ~constant across a 100x input-rate sweep");

  Table table({"rate", "input", "wire bytes", "bytes/input"});
  uint64_t first_bytes = 0;
  uint64_t last_bytes = 0;
  for (double rate : {10'000.0, 100'000.0, 1'000'000.0}) {
    const uint64_t bytes = RunVizWireOnce(rate);
    const auto input = static_cast<uint64_t>(rate * 60);
    table.AddRow({Fmt("%.0fk ev/s", rate / 1000),
                  bench::Count(static_cast<double>(input)),
                  bench::Bytes(bytes),
                  Fmt("%.5f", static_cast<double>(bytes) /
                                  static_cast<double>(input))});
    report->Add(Fmt("viz_wire_bytes_rate_%.0f", rate), bytes);
    if (first_bytes == 0) first_bytes = bytes;
    last_bytes = bytes;
  }
  table.Print();
  // ~1.0 means a 100x rate increase did not move the transferred volume.
  report->Add("viz_wire_rate_independence_ratio",
              static_cast<double>(last_bytes) /
                  static_cast<double>(std::max<uint64_t>(first_bytes, 1)));
}

void RaiseFdLimit() {
  rlimit rl{};
  if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
    rl.rlim_cur = rl.rlim_max;  // 1000-subscriber tier needs >1024 fds
    ::setrlimit(RLIMIT_NOFILE, &rl);
  }
}

}  // namespace
}  // namespace streamline

int main(int argc, char** argv) {
  streamline::RaiseFdLimit();
  const uint64_t ingest_records =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000ull;
  const int fanout_publishes = argc > 2 ? std::atoi(argv[2]) : 2'000;
  const int max_subs = argc > 3 ? std::atoi(argv[3]) : 1'000;

  streamline::bench::JsonReport report("BENCH_E7.json");
  report.AddString("bench", "e7_i2_transfer");
  streamline::RunReducerTier(&report);
  streamline::RunIngestTier(ingest_records, &report);
  streamline::RunFanoutTier(fanout_publishes, max_subs, &report);
  streamline::RunVizWireTier(&report);
  report.Write();
  return 0;
}
