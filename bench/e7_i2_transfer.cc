// E7 -- I2's data-rate independent visualization transfer.
//
// Operationalizes: "an aggregation algorithm for time-series data, which
// reduces the amount of data in a data-rate independent manner"
// (STREAMLINE, Sec. 1 / I2, EDBT'17). A fixed 1000-pixel viewport over 60
// seconds of event time is fed at increasing input rates; M4 (and the
// other per-column reducers) transfer a constant volume while raw and
// sampling transfers grow linearly with the rate.

#include <memory>

#include "bench/harness.h"
#include "viz/reducers.h"
#include "workload/timeseries.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

constexpr int kViewportPx = 1000;
constexpr Duration kSpanMs = 60'000;  // 60 s of event time
constexpr Duration kColumnMs = kSpanMs / kViewportPx;

struct Measured {
  uint64_t points = 0;
  uint64_t bytes = 0;
  double seconds = 0;
  uint64_t input = 0;
};

Measured RunOne(SeriesReducer* reducer, double rate) {
  RandomWalkSeries walk(RateShape{rate, 0.3}, 0.0, 1.0, 21);
  const auto n = static_cast<uint64_t>(rate * 60);
  Measured out;
  out.input = n;
  Stopwatch sw;
  for (uint64_t i = 0; i < n; ++i) {
    const SeriesPoint p = walk.Next();
    reducer->OnElement(p.t, p.v);
  }
  reducer->OnWatermark(kMaxTimestamp);
  out.seconds = sw.ElapsedSeconds();
  out.points = reducer->points_transferred();
  out.bytes = reducer->bytes_transferred();
  return out;
}

void Run() {
  bench::Header(
      "E7: transferred data vs input rate (1000 px viewport, 60 s span)",
      "I2's M4 aggregation reduces data in a data-rate independent manner: "
      "transfer stays ~constant while raw grows linearly");

  Table table({"rate", "reducer", "input", "points sent", "bytes sent",
               "reduction", "ingest rate"});
  for (double rate : {1'000.0, 10'000.0, 100'000.0, 1'000'000.0}) {
    std::vector<std::unique_ptr<SeriesReducer>> reducers;
    reducers.push_back(std::make_unique<RawReducer>());
    reducers.push_back(std::make_unique<EveryNthReducer>(100));
    reducers.push_back(std::make_unique<UniformSamplingReducer>(0.01));
    reducers.push_back(std::make_unique<PaaReducer>(kColumnMs));
    reducers.push_back(std::make_unique<MinMaxReducer>(kColumnMs));
    reducers.push_back(std::make_unique<M4Reducer>(kColumnMs));
    for (auto& reducer : reducers) {
      const Measured m = RunOne(reducer.get(), rate);
      table.AddRow(
          {Fmt("%.0fk ev/s", rate / 1000), reducer->Name(),
           bench::Count(static_cast<double>(m.input)),
           bench::Count(static_cast<double>(m.points)),
           bench::Bytes(m.bytes),
           Fmt("%.1fx", static_cast<double>(m.input) /
                            std::max<uint64_t>(m.points, 1)),
           bench::Rate(static_cast<double>(m.input), m.seconds)});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace streamline

int main() {
  streamline::Run();
  return 0;
}
