// E1 -- single-query sliding-window aggregation, range sweep.
//
// Operationalizes: "Cutty ... introduces a general aggregation sharing
// framework for streaming windows, which outperforms previous solutions in
// order of magnitudes." (STREAMLINE, Sec. 1 / Cutty, CIKM'16)
//
// Workload: one SUM query over a sliding window, slide fixed at 1 s, range
// swept from 16 s to 16384 s; input is one record per millisecond. Cutty's
// per-record work is constant in the range, the per-window baselines
// degrade with the number of overlapping windows (range/slide).

#include <memory>

#include "agg/techniques.h"
#include "bench/harness.h"
#include "common/metrics.h"
#include "common/random.h"
#include "window/aggregate_fn.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

constexpr Duration kSlideMs = 1'000;
constexpr uint64_t kBaseRecords = 2'000'000;

struct RunResult {
  double seconds = 0;
  uint64_t records = 0;
  AggStats stats;
  bool dnf = false;  // configuration infeasible within the op budget
};

RunResult RunOne(AggTechnique technique, Duration range_ms,
                 uint64_t max_records) {
  RunResult out;
  // Per-element work of the expensive baselines grows with range/slide;
  // shrink their record budget so each configuration stays comparable in
  // wall-time (throughput is rate-normalized anyway).
  const auto overlap = static_cast<uint64_t>(range_ms / kSlideMs);
  uint64_t n = max_records;
  if (technique == AggTechnique::kEager) {
    // Eager's cost is per-element (overlap partial updates each); a shorter
    // stream measures the same steady-state rate.
    const uint64_t op_budget = 120'000'000;
    n = std::min(n, std::max<uint64_t>(op_budget / std::max<uint64_t>(overlap, 1),
                                       5'000));
  } else if (technique == AggTechnique::kNaive) {
    // Naive recomputes on fire, so the stream must span well past the range
    // to reach steady state; mark configurations whose honest measurement
    // would exceed the op budget as DNF instead of reporting a warm-up-only
    // rate.
    const auto min_n = static_cast<uint64_t>(range_ms * 2.2);
    const uint64_t fires = (std::max(n, min_n) - range_ms) / kSlideMs;
    const double est_ops =
        static_cast<double>(fires) * static_cast<double>(range_ms);
    if (est_ops > 3e9) {
      out.dnf = true;
      return out;
    }
    n = std::max(n, min_n);
  }
  auto agg = MakeAggregator<SumAgg<double>>(technique);
  uint64_t fired = 0;
  agg->AddQuery(std::make_unique<SlidingWindowFn>(range_ms, kSlideMs),
                [&fired](size_t, const Window&, const double&) { ++fired; });
  Rng rng(7);
  out.records = n;
  Stopwatch sw;
  for (uint64_t i = 0; i < n; ++i) {
    agg->OnElement(static_cast<Timestamp>(i), rng.NextDouble());
  }
  out.seconds = sw.ElapsedSeconds();
  out.stats = agg->stats();
  return out;
}

void Run() {
  bench::Header(
      "E1: single-query sliding window SUM, range sweep (slide = 1 s)",
      "Cutty outperforms previous solutions by orders of magnitude; its "
      "cost is independent of the window range");

  const Duration ranges_s[] = {16, 64, 256, 1024, 4096, 16384};
  const AggTechnique techniques[] = {
      AggTechnique::kCutty,  AggTechnique::kCuttyLazy,
      AggTechnique::kCuttyPrefix, AggTechnique::kPairs,
      AggTechnique::kPanes,  AggTechnique::kBInt,
      AggTechnique::kEager,  AggTechnique::kNaive,
  };

  Table table({"range", "technique", "throughput", "aggs/record",
               "peak stored", "records"});
  for (Duration rs : ranges_s) {
    for (AggTechnique t : techniques) {
      const RunResult r = RunOne(t, rs * 1000, kBaseRecords);
      if (r.dnf) {
        table.AddRow({Fmt("%llds", static_cast<long long>(rs)),
                      std::string(AggTechniqueToString(t)),
                      "dnf (op budget)", "-", "-", "-"});
        continue;
      }
      table.AddRow({Fmt("%llds", static_cast<long long>(rs)),
                    std::string(AggTechniqueToString(t)),
                    bench::Rate(static_cast<double>(r.records), r.seconds),
                    Fmt("%.2f", r.stats.OpsPerRecord()),
                    bench::Count(static_cast<double>(r.stats.peak_stored)),
                    bench::Count(static_cast<double>(r.records))});
    }
  }
  table.Print();
}

}  // namespace
}  // namespace streamline

int main() {
  streamline::Run();
  return 0;
}
