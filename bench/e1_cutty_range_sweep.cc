// E1 -- single-query sliding-window aggregation, range sweep.
//
// Operationalizes: "Cutty ... introduces a general aggregation sharing
// framework for streaming windows, which outperforms previous solutions in
// order of magnitudes." (STREAMLINE, Sec. 1 / Cutty, CIKM'16)
//
// Workload: one SUM query over a sliding window, slide fixed at 1 s, range
// swept from 16 s to 16384 s; input is one record per millisecond. Cutty's
// per-record work is constant in the range, the per-window baselines
// degrade with the number of overlapping windows (range/slide).

#include <memory>
#include <string>

#include "agg/techniques.h"
#include "bench/harness.h"
#include "common/metrics.h"
#include "common/random.h"
#include "window/aggregate_fn.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

constexpr Duration kSlideMs = 1'000;
constexpr uint64_t kBaseRecords = 2'000'000;

struct RunResult {
  double seconds = 0;
  uint64_t records = 0;
  AggStats stats;
  bool dnf = false;  // configuration infeasible within the op budget
};

RunResult RunOne(AggTechnique technique, Duration range_ms,
                 uint64_t max_records) {
  RunResult out;
  // Per-element work of the expensive baselines grows with range/slide;
  // shrink their record budget so each configuration stays comparable in
  // wall-time (throughput is rate-normalized anyway).
  const auto overlap = static_cast<uint64_t>(range_ms / kSlideMs);
  uint64_t n = max_records;
  if (technique == AggTechnique::kEager) {
    // Eager's cost is per-element (overlap partial updates each); a shorter
    // stream measures the same steady-state rate.
    const uint64_t op_budget = 120'000'000;
    n = std::min(n, std::max<uint64_t>(op_budget / std::max<uint64_t>(overlap, 1),
                                       5'000));
  } else if (technique == AggTechnique::kNaive) {
    // Naive recomputes on fire, so the stream must span well past the range
    // to reach steady state; mark configurations whose honest measurement
    // would exceed the op budget as DNF instead of reporting a warm-up-only
    // rate.
    const auto min_n = static_cast<uint64_t>(range_ms * 2.2);
    const uint64_t fires = (std::max(n, min_n) - range_ms) / kSlideMs;
    const double est_ops =
        static_cast<double>(fires) * static_cast<double>(range_ms);
    if (est_ops > 3e9) {
      out.dnf = true;
      return out;
    }
    n = std::max(n, min_n);
  }
  auto agg = MakeAggregator<SumAgg<double>>(technique);
  uint64_t fired = 0;
  agg->AddQuery(std::make_unique<SlidingWindowFn>(range_ms, kSlideMs),
                [&fired](size_t, const Window&, const double&) { ++fired; });
  Rng rng(7);
  out.records = n;
  Stopwatch sw;
  for (uint64_t i = 0; i < n; ++i) {
    agg->OnElement(static_cast<Timestamp>(i), rng.NextDouble());
  }
  out.seconds = sw.ElapsedSeconds();
  out.stats = agg->stats();
  return out;
}

// OnElement vs OnElements: the same aggregator fed one element per virtual
// call vs contiguous spans of 256. The batched path folds whole
// quiet-period runs into the open slice (Cutty) or open windows (Eager)
// with the AggFoldSpan kernels; outputs are bit-identical by contract.
template <typename Agg>
double RunKernel(AggTechnique technique, uint64_t n, size_t batch) {
  auto agg = MakeAggregator<Agg>(technique);
  uint64_t fired = 0;
  agg->AddQuery(
      std::make_unique<SlidingWindowFn>(64'000, kSlideMs),
      [&fired](size_t, const Window&, const typename Agg::Output&) {
        ++fired;
      });
  Rng rng(7);
  std::vector<Timestamp> ts(n);
  std::vector<typename Agg::Input> values(n);
  for (uint64_t i = 0; i < n; ++i) {
    ts[i] = static_cast<Timestamp>(i);
    values[i] = static_cast<typename Agg::Input>(rng.NextDouble());
  }
  Stopwatch sw;
  if (batch <= 1) {
    for (uint64_t i = 0; i < n; ++i) agg->OnElement(ts[i], values[i]);
  } else {
    for (uint64_t i = 0; i < n; i += batch) {
      const size_t m = static_cast<size_t>(std::min<uint64_t>(batch, n - i));
      agg->OnElements(ts.data() + i, values.data() + i, m);
    }
  }
  return sw.ElapsedSeconds();
}

template <typename Agg>
void KernelRow(Table* table, bench::JsonReport* report,
               AggTechnique technique, const char* tname, uint64_t n) {
  const double per_element_s = RunKernel<Agg>(technique, n, 1);
  const double spans_s = RunKernel<Agg>(technique, n, 256);
  table->AddRow({tname, Agg::kName,
                 bench::Rate(static_cast<double>(n), per_element_s),
                 bench::Rate(static_cast<double>(n), spans_s),
                 Fmt("%.2fx", per_element_s / spans_s)});
  report->Add(Fmt("%s_%s_per_element_rps", tname, Agg::kName),
              static_cast<double>(n) / per_element_s);
  report->Add(Fmt("%s_%s_on_elements_rps", tname, Agg::kName),
              static_cast<double>(n) / spans_s);
}

void Run() {
  bench::Header(
      "E1: single-query sliding window SUM, range sweep (slide = 1 s)",
      "Cutty outperforms previous solutions by orders of magnitude; its "
      "cost is independent of the window range");

  bench::JsonReport report("BENCH_E1.json");
  report.AddString("bench", "e1_cutty_range_sweep");

  const Duration ranges_s[] = {16, 64, 256, 1024, 4096, 16384};
  const AggTechnique techniques[] = {
      AggTechnique::kCutty,  AggTechnique::kCuttyLazy,
      AggTechnique::kCuttyPrefix, AggTechnique::kPairs,
      AggTechnique::kPanes,  AggTechnique::kBInt,
      AggTechnique::kEager,  AggTechnique::kNaive,
  };

  Table table({"range", "technique", "throughput", "aggs/record",
               "peak stored", "records"});
  for (Duration rs : ranges_s) {
    for (AggTechnique t : techniques) {
      const std::string tname(AggTechniqueToString(t));
      const RunResult r = RunOne(t, rs * 1000, kBaseRecords);
      if (r.dnf) {
        table.AddRow({Fmt("%llds", static_cast<long long>(rs)), tname,
                      "dnf (op budget)", "-", "-", "-"});
        continue;
      }
      table.AddRow({Fmt("%llds", static_cast<long long>(rs)), tname,
                    bench::Rate(static_cast<double>(r.records), r.seconds),
                    Fmt("%.2f", r.stats.OpsPerRecord()),
                    bench::Count(static_cast<double>(r.stats.peak_stored)),
                    bench::Count(static_cast<double>(r.records))});
      report.Add(Fmt("%s_range%lld_rps", tname.c_str(),
                     static_cast<long long>(rs)),
                 static_cast<double>(r.records) / r.seconds);
    }
  }
  table.Print();

  {
    // Vectorized aggregation kernels: per-element OnElement dispatch vs
    // contiguous OnElements spans (batch path), SUM/COUNT/MIN/MAX, range
    // 64 s. Eager uses a shorter stream (its per-element cost scales with
    // overlap); throughput is rate-normalized.
    Table kernels({"technique", "agg", "OnElement", "OnElements(256)",
                   "speedup"});
    constexpr uint64_t kCuttyN = 2'000'000;
    constexpr uint64_t kEagerN = 500'000;
    KernelRow<SumAgg<double>>(&kernels, &report, AggTechnique::kCutty,
                              "cutty", kCuttyN);
    KernelRow<CountAgg<double>>(&kernels, &report, AggTechnique::kCutty,
                                "cutty", kCuttyN);
    KernelRow<MinAgg<double>>(&kernels, &report, AggTechnique::kCutty,
                              "cutty", kCuttyN);
    KernelRow<MaxAgg<double>>(&kernels, &report, AggTechnique::kCutty,
                              "cutty", kCuttyN);
    KernelRow<SumAgg<double>>(&kernels, &report, AggTechnique::kEager,
                              "eager", kEagerN);
    KernelRow<CountAgg<double>>(&kernels, &report, AggTechnique::kEager,
                                "eager", kEagerN);
    KernelRow<MinAgg<double>>(&kernels, &report, AggTechnique::kEager,
                              "eager", kEagerN);
    KernelRow<MaxAgg<double>>(&kernels, &report, AggTechnique::kEager,
                              "eager", kEagerN);
    kernels.Print();
  }

  report.Write();
}

}  // namespace
}  // namespace streamline

int main() {
  streamline::Run();
  return 0;
}
