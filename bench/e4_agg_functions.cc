// E4 -- aggregate-function generality (store ablation).
//
// Operationalizes Cutty's generality claim behind STREAMLINE's "advanced
// window aggregation techniques": sharing works for NON-INVERTIBLE
// aggregates (max, variance) at nearly the cost of invertible ones (sum),
// thanks to the FlatFAT partial-aggregate tree. Also ablates the store
// choice: FlatFAT (eager tree) vs linear scan (lazy) vs O(1) prefix store
// (invertible only).

#include <memory>

#include "agg/techniques.h"
#include "bench/harness.h"
#include "common/random.h"
#include "window/aggregate_fn.h"

namespace streamline {
namespace {

using bench::Fmt;
using bench::Table;

constexpr uint64_t kRecords = 2'000'000;
constexpr Duration kRange = 300'000;  // 300 s
constexpr Duration kSlide = 10'000;   // 10 s

template <typename Agg>
void RunOne(const char* agg_name, AggTechnique technique, Table* table) {
  if (technique == AggTechnique::kCuttyPrefix && !Agg::kInvertible) {
    table->AddRow({agg_name, std::string(AggTechniqueToString(technique)),
                   "n/a (not invertible)", "-", "-"});
    return;
  }
  auto agg = MakeAggregator<Agg>(technique);
  uint64_t fired = 0;
  agg->AddQuery(
      std::make_unique<SlidingWindowFn>(kRange, kSlide),
      [&fired](size_t, const Window&, const typename Agg::Output&) {
        ++fired;
      });
  Rng rng(11);
  uint64_t n = kRecords;
  if (technique == AggTechnique::kNaive) n /= 4;
  Stopwatch sw;
  for (uint64_t i = 0; i < n; ++i) {
    agg->OnElement(static_cast<Timestamp>(i), rng.NextDouble());
  }
  const double secs = sw.ElapsedSeconds();
  table->AddRow({agg_name, std::string(AggTechniqueToString(technique)),
                 bench::Rate(static_cast<double>(n), secs),
                 Fmt("%.2f", agg->stats().OpsPerRecord()),
                 bench::Count(static_cast<double>(fired))});
}

void Run() {
  bench::Header(
      "E4: aggregate functions x slice stores (range 300 s, slide 10 s)",
      "Aggregate sharing covers non-invertible functions (max, variance) "
      "at near-invertible cost via the FlatFAT tree store");

  Table table({"aggregate", "technique", "throughput", "aggs/record",
               "fires"});
  const AggTechnique techniques[] = {
      AggTechnique::kCutty,        // FlatFAT
      AggTechnique::kCuttyLazy,    // linear store
      AggTechnique::kCuttyPrefix,  // O(1) prefix store (invertible only)
      AggTechnique::kNaive,
  };
  for (AggTechnique t : techniques) {
    RunOne<SumAgg<double>>("sum", t, &table);
  }
  for (AggTechnique t : techniques) {
    RunOne<MaxAgg<double>>("max", t, &table);
  }
  for (AggTechnique t : techniques) {
    RunOne<VarianceAgg<double>>("variance", t, &table);
  }
  for (AggTechnique t : techniques) {
    RunOne<MeanAgg<double>>("mean", t, &table);
  }
  table.Print();
}

}  // namespace
}  // namespace streamline

int main() {
  streamline::Run();
  return 0;
}
