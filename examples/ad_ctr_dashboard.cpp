// Target advertisement: a live CTR dashboard combining both STREAMLINE
// research highlights.
//
//   * Cutty: four sliding-window CTR queries per campaign (1/2/5/10 min,
//     10 s slide) share ONE slice store inside the engine's window
//     operator -- one partial update per event no matter how many windows.
//   * I2: the 1-minute CTR of the top campaign is streamed to a simulated
//     dashboard through the VizServer; the M4 pyramid keeps the transferred
//     volume data-rate independent, and zooming is answered without
//     touching raw data.
//
// Build & run:  ./build/examples/ad_ctr_dashboard

#include <cstdio>
#include <map>

#include "api/datastream.h"
#include "viz/server.h"
#include "workload/adstream.h"

using namespace streamline;

int main() {
  constexpr uint64_t kEvents = 500'000;
  AdStreamGenerator::Options opts;
  opts.num_campaigns = 50;
  opts.events_per_second = 5'000;  // 500k events = 100 s of event time
  auto gen = std::make_shared<AdStreamGenerator>(opts, /*seed=*/12);

  // The dashboard visualizes CTR results as they fire.
  auto viz = std::make_shared<VizServer>(/*base_column_width=*/10'000,
                                         /*levels=*/6);
  const int screen =
      viz->Connect(Viewport{0, 120'000, 800, 200, /*follow=*/false});

  Environment env;
  auto results =
      env.FromGenerator("ad-events",
                        [gen](uint64_t seq) -> std::optional<Record> {
                          if (seq >= kEvents) return std::nullopt;
                          return gen->Next().ToRecord();
                        })
          .KeyBy(0)  // campaign
          .Window({std::make_shared<SlidingWindowFn>(60'000, 10'000),
                   std::make_shared<SlidingWindowFn>(120'000, 10'000),
                   std::make_shared<SlidingWindowFn>(300'000, 10'000),
                   std::make_shared<SlidingWindowFn>(600'000, 10'000)})
          // CTR == mean of the is_click flag.
          .Aggregate(DynAggKind::kAvg, /*value_field=*/1,
                     WindowBackend::kShared, "ctr-windows");
  auto sink = results.Collect("ctr");
  // Feed the 1-minute CTR of campaign 0 into the dashboard as it fires.
  results
      .Filter(
          [](const Record& r) {
            return r.field(0).AsInt64() == 0 && r.field(3).AsInt64() == 0 &&
                   !r.field(4).is_null();
          },
          "top-campaign-1m")
      .Sink(std::make_shared<CallbackSink>([viz](const Record& r) {
        viz->OnElement(r.field(2).AsInt64(), r.field(4).AsDouble());
        viz->OnWatermark(r.field(2).AsInt64());
      }),
            "dashboard-feed");

  STREAMLINE_CHECK_OK(env.Execute());
  viz->Flush();

  // Report: CTR per window size for a few campaigns (last fired window).
  std::map<std::pair<int64_t, int64_t>, double> latest_ctr;
  std::map<std::pair<int64_t, int64_t>, Timestamp> latest_end;
  for (const Record& r : sink->records()) {
    if (r.field(4).is_null()) continue;
    const auto key = std::make_pair(r.field(0).AsInt64(),
                                    r.field(3).AsInt64());
    if (r.field(2).AsInt64() >= latest_end[key]) {
      latest_end[key] = r.field(2).AsInt64();
      latest_ctr[key] = r.field(4).AsDouble();
    }
  }
  std::printf("processed %llu ad events; %zu window results fired\n",
              static_cast<unsigned long long>(kEvents),
              sink->size());
  std::printf("\nlatest CTR by window size (campaign, truth in parens):\n");
  std::printf("%-10s %-12s %-8s %-8s %-8s %-8s\n", "campaign", "truth",
              "1min", "2min", "5min", "10min");
  for (int64_t campaign : {0, 1, 2, 3}) {
    std::printf("%-10lld (%.3f)      ", static_cast<long long>(campaign),
                gen->CampaignCtr(campaign));
    for (int64_t q = 0; q < 4; ++q) {
      std::printf("%-8.3f ", latest_ctr[{campaign, q}]);
    }
    std::printf("\n");
  }

  // Dashboard interaction + transfer accounting.
  const auto before = viz->transfer_stats(screen);
  viz->Zoom(screen, 0.25);
  viz->Pan(screen, -30'000);
  const auto after = viz->transfer_stats(screen);
  std::printf(
      "\ndashboard transfer: %llu points (%llu bytes) total; zoom+pan cost "
      "%llu points, answered from the M4 pyramid (%zu stored columns, no "
      "raw re-scan)\n",
      static_cast<unsigned long long>(after.points),
      static_cast<unsigned long long>(after.bytes),
      static_cast<unsigned long long>(after.points - before.points),
      viz->pyramid().stored_columns());
  return 0;
}
