// Customer retention: sessionization of a clickstream with session windows
// -- one of the four applications STREAMLINE names (reactive/proactive
// customer retention) and the paper's showcase for Cutty's non-periodic
// windows.
//
// The pipeline computes, per user and session:
//   * events per session (engagement),
//   * purchase revenue per session,
// using TWO session-window queries that share one slice store (multi-query
// sharing), then flags users whose latest session was far below their
// running average -- a simple churn-risk signal.
//
// Build & run:  ./build/examples/clickstream_sessions

#include <cstdio>
#include <map>

#include "api/datastream.h"
#include "workload/clickstream.h"

using namespace streamline;

int main() {
  constexpr int kEvents = 200'000;
  ClickstreamGenerator::Options opts;
  opts.num_users = 400;
  opts.session_gap_ms = 30'000;
  opts.max_event_gap_ms = 10'000;

  auto gen = std::make_shared<ClickstreamGenerator>(opts, /*seed=*/7);

  Environment env;
  auto events = env.FromGenerator(
      "clickstream", [gen](uint64_t seq) -> std::optional<Record> {
        if (seq >= kEvents) return std::nullopt;
        return gen->Next().ToRecord();  // [user, kind, item, value]
      });

  // Two session queries (count of events, sum of purchase value) over the
  // same 30 s session gap, sharing one Cutty aggregator per user.
  auto sessions =
      events.KeyBy(0)
          .Window({std::make_shared<SessionWindowFn>(opts.session_gap_ms),
                   std::make_shared<SessionWindowFn>(opts.session_gap_ms)})
          .Aggregate(DynAggKind::kCount, /*value_field=*/3,
                     WindowBackend::kShared, "sessionize");
  auto session_sink = sessions.Collect("session-stats");

  // Revenue per session: same sessionization, SUM over the value field.
  auto revenue_sink =
      events.KeyBy(0)
          .Window(std::make_shared<SessionWindowFn>(opts.session_gap_ms))
          .Aggregate(DynAggKind::kSum, /*value_field=*/3,
                     WindowBackend::kShared, "session-revenue")
          .Collect("session-revenue");

  STREAMLINE_CHECK_OK(env.Execute());

  // Output records: [user, w_start, w_end, query, result].
  struct UserStats {
    int sessions = 0;
    double total_events = 0;
    double last_session_events = 0;
    Timestamp last_end = 0;
  };
  std::map<int64_t, UserStats> users;
  for (const Record& r : session_sink->records()) {
    if (r.field(3).AsInt64() != 0) continue;  // first query only
    UserStats& u = users[r.field(0).AsInt64()];
    u.sessions += 1;
    const auto events_in_session =
        static_cast<double>(r.field(4).AsInt64());
    u.total_events += events_in_session;
    if (r.field(2).AsInt64() >= u.last_end) {
      u.last_end = r.field(2).AsInt64();
      u.last_session_events = events_in_session;
    }
  }

  double total_revenue = 0;
  for (const Record& r : revenue_sink->records()) {
    total_revenue += r.field(4).AsDouble();
  }

  std::printf("processed %d clickstream events\n", kEvents);
  std::printf("users with sessions: %zu\n", users.size());
  std::printf("total session revenue: %.2f\n", total_revenue);

  int at_risk = 0;
  for (const auto& [user, u] : users) {
    const double avg =
        u.total_events / static_cast<double>(u.sessions);
    if (u.sessions >= 3 && u.last_session_events < 0.5 * avg) ++at_risk;
  }
  std::printf(
      "churn-risk users (latest session < 50%% of their average): %d\n",
      at_risk);

  // A few sample users.
  std::printf("\n%-8s %-10s %-14s %-14s\n", "user", "sessions",
              "events/session", "last session");
  int shown = 0;
  for (const auto& [user, u] : users) {
    if (shown++ >= 5) break;
    std::printf("%-8lld %-10d %-14.1f %-14.0f\n",
                static_cast<long long>(user), u.sessions,
                u.total_events / u.sessions, u.last_session_events);
  }
  return 0;
}
