// Personalized recommendations: trending items over sliding windows.
//
// STREAMLINE motivates "personalized recommendations" as a proactive
// application; its simplest streaming core is "what is trending right
// now": per-item click counts over a sliding window, reduced to a top-k
// set that a recommender would blend with per-user features. Demonstrates
// keyed windows + a second aggregation stage consuming window results --
// a two-stage event-time pipeline on one engine.
//
// Build & run:  ./build/examples/trending_topk

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "api/datastream.h"
#include "workload/clickstream.h"

using namespace streamline;

int main() {
  constexpr uint64_t kEvents = 300'000;
  constexpr Duration kWindow = 60'000;  // 1 minute popularity window
  constexpr Duration kSlide = 15'000;
  constexpr int kTopK = 5;

  ClickstreamGenerator::Options opts;
  opts.num_items = 200;
  opts.item_skew = 1.1;  // strong head: clear trending set
  auto gen = std::make_shared<ClickstreamGenerator>(opts, /*seed=*/99);

  Environment env;
  auto sink =
      env.FromGenerator("clicks",
                        [gen](uint64_t seq) -> std::optional<Record> {
                          if (seq >= kEvents) return std::nullopt;
                          return gen->Next().ToRecord();
                        })
          // keep clicks and purchases only (intent signals)
          .Filter(
              [](const Record& r) { return r.field(1).AsInt64() >= 1; },
              "intent-only")
          .KeyBy(2)  // item
          .Window(std::make_shared<SlidingWindowFn>(kWindow, kSlide))
          .Aggregate(DynAggKind::kCount, /*value_field=*/1,
                     WindowBackend::kShared, "item-popularity")
          .Collect("per-item-window-counts");

  STREAMLINE_CHECK_OK(env.Execute());

  // Second stage (here: post-processing): per window, take the top-k items.
  // Output records: [item, w_start, w_end, query, count].
  std::map<Window, std::vector<std::pair<int64_t, int64_t>>> per_window;
  for (const Record& r : sink->records()) {
    per_window[Window{r.field(1).AsInt64(), r.field(2).AsInt64()}]
        .emplace_back(r.field(4).AsInt64(), r.field(0).AsInt64());
  }

  std::printf("windows fired: %zu (range %lld ms, slide %lld ms)\n\n",
              per_window.size(), static_cast<long long>(kWindow),
              static_cast<long long>(kSlide));
  std::printf("trending top-%d per window (item:count):\n", kTopK);
  int shown = 0;
  int stable_head = 0;
  int64_t prev_top = -1;
  for (auto& [window, items] : per_window) {
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (!items.empty()) {
      if (items[0].second == prev_top) ++stable_head;
      prev_top = items[0].second;
    }
    if (shown < 6 || shown + 3 >= static_cast<int>(per_window.size())) {
      std::printf("  %s:", window.ToString().c_str());
      for (int k = 0; k < kTopK && k < static_cast<int>(items.size()); ++k) {
        std::printf(" %lld:%lld", static_cast<long long>(items[k].second),
                    static_cast<long long>(items[k].first));
      }
      std::printf("\n");
    } else if (shown == 6) {
      std::printf("  ...\n");
    }
    ++shown;
  }
  std::printf(
      "\nhead stability: the #1 item repeated across %d of %zu windows "
      "(Zipf head dominates, as expected)\n",
      stable_head, per_window.size());
  return 0;
}
