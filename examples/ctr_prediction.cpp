// Proactive target advertisement: ONLINE click-through prediction.
//
// STREAMLINE's third research pillar is machine learning on the unified
// engine. This example trains a logistic-regression CTR model directly
// inside the pipeline (prequential test-then-train: predict each
// impression, then learn from its true click label), while the SAME
// stream simultaneously feeds the shared-window CTR dashboard from the
// ad_ctr_dashboard example -- analytics and learning in one job, no
// second system, which is exactly the "reduction of complexity, costs,
// and latency" the paper argues for.
//
// Build & run:  ./build/examples/ctr_prediction

#include <cstdio>

#include "api/datastream.h"
#include "ml/learner_operator.h"
#include "workload/adstream.h"

using namespace streamline;

int main() {
  constexpr uint64_t kEvents = 400'000;
  AdStreamGenerator::Options opts;
  opts.num_campaigns = 32;
  opts.events_per_second = 5'000;
  auto gen = std::make_shared<AdStreamGenerator>(opts, /*seed=*/31);

  // Feature map: one-hot campaign bucket (campaign % 8). The ground-truth
  // CTR depends on campaign % 5, so buckets are informative but not
  // perfectly aligned -- the model has something real to learn. (The cost
  // field would leak the label and is deliberately NOT a feature.)
  constexpr size_t kBuckets = 8;
  OnlineClassifierOperator::Spec spec;
  spec.dim = kBuckets;
  spec.model.learning_rate = 0.1;
  spec.emit_every = 2'000;
  spec.features = [](const Record& r) {
    std::vector<double> x(kBuckets, 0.0);
    x[static_cast<size_t>(r.field(0).AsInt64()) % kBuckets] = 1.0;
    return x;
  };
  spec.label = [](const Record& r) { return r.field(1).AsBool(); };

  Environment env;
  auto ads = env.FromGenerator(
      "ad-events", [gen](uint64_t seq) -> std::optional<Record> {
        if (seq >= kEvents) return std::nullopt;
        return gen->Next().ToRecord();  // [campaign, is_click, cost]
      });

  // Branch 1: the analytics dashboard (shared sliding-window CTR).
  auto dashboard = ads.KeyBy(0)
                       .Window({std::make_shared<SlidingWindowFn>(60'000, 10'000),
                                std::make_shared<SlidingWindowFn>(300'000, 10'000)})
                       .Aggregate(DynAggKind::kAvg, 1)
                       .Collect("dashboard");

  // Branch 2: the online learner (custom operator via Process()).
  auto evals = ads.Process(
                      [spec]() {
                        return std::make_unique<OnlineClassifierOperator>(
                            "ctr-model", spec);
                      },
                      "ctr-model")
                   .Collect("model-evals");

  STREAMLINE_CHECK_OK(env.Execute());

  // Model learning curve: [prediction, label, decayed_logloss].
  const auto curve = evals->records();
  std::printf("processed %llu ad events; dashboard windows fired: %zu\n\n",
              static_cast<unsigned long long>(kEvents), dashboard->size());
  std::printf("online CTR model learning curve (prequential log loss):\n");
  std::printf("%-12s %-12s\n", "examples", "avg logloss");
  for (size_t i = 0; i < curve.size(); i += curve.size() / 8) {
    std::printf("%-12zu %-12.4f\n", (i + 1) * 2000,
                curve[i].field(2).AsDouble());
  }
  std::printf("%-12zu %-12.4f\n", curve.size() * 2000,
              curve.back().field(2).AsDouble());

  const double first = curve.front().field(2).AsDouble();
  const double last = curve.back().field(2).AsDouble();
  std::printf(
      "\nloss fell from %.4f to %.4f while the same job served the "
      "dashboard -- one engine, analytics + learning.\n",
      first, last);
  STREAMLINE_CHECK_LT(last, first);
  return 0;
}
