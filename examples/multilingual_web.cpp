// Multilingual Web processing -- the fourth application STREAMLINE names.
//
// A mixed-language document stream is processed in one job:
//   * per-language tumbling-window document counts on the engine (keyed
//     windows), and
//   * per-language *distinct-vocabulary* tracking via windowed
//     HyperLogLog count-distinct -- a sketch aggregate running on the
//     same Cutty slicing core as sum/max (sketches are just another
//     algebraic partial), driven from the pipeline through a sink.
//
// Build & run:  ./build/examples/multilingual_web

#include <cstdio>
#include <map>
#include <set>

#include "agg/slicing_aggregator.h"
#include "api/datastream.h"
#include "window/sketches.h"
#include "workload/text.h"

using namespace streamline;

namespace {

uint64_t HashWord(const std::string& w) { return Value(w).Hash(); }

struct Language {
  const char* name;
  uint64_t vocabulary;
  double lines_per_second;
};

constexpr Language kLanguages[] = {
    {"en", 2000, 60}, {"de", 1200, 30}, {"hu", 800, 15}, {"it", 600, 10}};

}  // namespace

int main() {
  constexpr uint64_t kLines = 40'000;

  // One generator per language, merged into a single tagged stream.
  std::vector<std::shared_ptr<TextGenerator>> gens;
  for (const Language& lang : kLanguages) {
    TextGenerator::Options opt;
    opt.vocabulary = lang.vocabulary;
    opt.lines_per_second = lang.lines_per_second;
    gens.push_back(std::make_shared<TextGenerator>(
        opt, 1000 + (&lang - kLanguages)));
  }

  // Library-level windowed count-distinct per language (HLL sketches on
  // the shared slicing core), fed from the engine below.
  struct VocabTracker {
    SlicingAggregator<CountDistinctAgg<12>> agg;
    std::map<Window, double> estimates;
    VocabTracker() {
      agg.AddQuery(std::make_unique<TumblingWindowFn>(120'000),
                   [this](size_t, const Window& w, const double& v) {
                     estimates[w] = v;
                   });
    }
  };
  auto trackers = std::make_shared<std::map<std::string, VocabTracker>>();
  std::mutex trackers_mu;

  Environment env;
  auto docs = env.FromGenerator(
      "web-crawl", [gens](uint64_t seq) -> std::optional<Record> {
        if (seq >= kLines) return std::nullopt;
        // Weighted round-robin over languages by rate.
        const size_t which = seq % 12 < 6   ? 0
                             : seq % 12 < 9 ? 1
                             : seq % 12 < 11 ? 2
                                             : 3;
        Record line = gens[which]->NextRecord();
        line.fields.insert(line.fields.begin(),
                           Value(kLanguages[which].name));
        return line;  // [language, text]
      });

  // Engine branch: documents per language per 2-minute window.
  auto counts = docs.KeyBy(0)
                    .Window(std::make_shared<TumblingWindowFn>(120'000))
                    .Aggregate(DynAggKind::kCount, 1)
                    .Collect("doc-counts");

  // Sketch branch: tokenize and feed the per-language HLL aggregators.
  docs.FlatMap(
          [](Record&& line, Collector* out) {
            for (const std::string& w :
                 SplitWords(line.field(1).AsString())) {
              out->Emit(MakeRecord(line.timestamp, line.field(0), Value(w)));
            }
          },
          "tokenize")
      .Sink(std::make_shared<CallbackSink>(
                [trackers, &trackers_mu](const Record& r) {
                  std::lock_guard<std::mutex> lock(trackers_mu);
                  auto& tracker = (*trackers)[r.field(0).AsString()];
                  tracker.agg.OnElement(r.timestamp,
                                        HashWord(r.field(1).AsString()));
                }),
            "vocabulary-sketches");

  STREAMLINE_CHECK_OK(env.Execute());
  {
    std::lock_guard<std::mutex> lock(trackers_mu);
    for (auto& [lang, tracker] : *trackers) {
      tracker.agg.OnWatermark(kMaxTimestamp);
    }
  }

  // Report.
  std::map<std::string, int64_t> docs_per_lang;
  for (const Record& r : counts->records()) {
    docs_per_lang[r.field(0).AsString()] += r.field(4).AsInt64();
  }
  std::printf("%-6s %-10s %-22s %-12s\n", "lang", "documents",
              "distinct words (est)", "true vocab");
  for (const Language& lang : kLanguages) {
    double max_estimate = 0;
    {
      std::lock_guard<std::mutex> lock(trackers_mu);
      for (const auto& [w, est] : (*trackers)[lang.name].estimates) {
        max_estimate = std::max(max_estimate, est);
      }
    }
    std::printf("%-6s %-10lld %-22.0f %-12llu\n", lang.name,
                static_cast<long long>(docs_per_lang[lang.name]),
                max_estimate,
                static_cast<unsigned long long>(lang.vocabulary));
  }
  std::printf(
      "\nper-window HLL estimates track each language's vocabulary; the "
      "sketch shares the same slicing core as every other aggregate.\n");
  return 0;
}
