// Quickstart: the paper's uniform programming model in one file.
//
// One word-count pipeline, written once, executed twice:
//   1. over data at rest  (a bounded in-memory collection -- "batch"),
//   2. over data in motion (a generator stream -- "streaming").
// Both runs use the same operators on the same pipelined engine; the only
// difference is the source. That is STREAMLINE's core usability claim.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <map>

#include "api/datastream.h"
#include "workload/text.h"

using namespace streamline;

namespace {

// The pipeline under test: split lines into words, count per word with a
// keyed running reduce. Identical for batch and streaming.
std::shared_ptr<CollectSink> BuildWordCount(Environment* env,
                                            DataStream lines) {
  return lines
      .FlatMap(
          [](Record&& line, Collector* out) {
            for (const std::string& w : SplitWords(line.field(0).AsString())) {
              out->Emit(MakeRecord(line.timestamp, Value(w),
                                   Value(int64_t{1})));
            }
          },
          "tokenize")
      .KeyBy(0)
      .Reduce(
          [](const Record& acc, const Record& in) {
            Record out = acc;
            out.fields[1] =
                Value(acc.field(1).AsInt64() + in.field(1).AsInt64());
            return out;
          },
          "count")
      .Collect("word-counts");
}

std::map<std::string, int64_t> FinalCounts(const std::vector<Record>& out) {
  std::map<std::string, int64_t> counts;
  for (const Record& r : out) {
    counts[r.field(0).AsString()] = r.field(1).AsInt64();
  }
  return counts;
}

}  // namespace

int main() {
  constexpr int kLines = 10'000;
  TextGenerator::Options text_opts;
  text_opts.vocabulary = 50;

  // ---- Run 1: data at rest -------------------------------------------------
  std::printf("== word count over data at rest (bounded collection) ==\n");
  TextGenerator gen_batch(text_opts, /*seed=*/2024);
  std::vector<Record> lines;
  for (int i = 0; i < kLines; ++i) lines.push_back(gen_batch.NextRecord());

  Environment batch_env;
  auto batch_sink =
      BuildWordCount(&batch_env, batch_env.FromRecords(std::move(lines)));
  STREAMLINE_CHECK_OK(batch_env.Execute());
  const auto batch_counts = FinalCounts(batch_sink->records());

  // ---- Run 2: data in motion ----------------------------------------------
  std::printf("== same pipeline over data in motion (generator stream) ==\n");
  auto gen_stream = std::make_shared<TextGenerator>(text_opts, /*seed=*/2024);
  Environment stream_env;
  auto stream_sink = BuildWordCount(
      &stream_env,
      stream_env.FromGenerator("lines", [gen_stream](uint64_t seq)
                                   -> std::optional<Record> {
        if (seq >= kLines) return std::nullopt;
        return gen_stream->NextRecord();
      }));
  STREAMLINE_CHECK_OK(stream_env.Execute());
  const auto stream_counts = FinalCounts(stream_sink->records());

  // ---- Compare --------------------------------------------------------------
  std::printf("\ntop words (batch == streaming):\n");
  int shown = 0;
  for (const auto& [word, count] : batch_counts) {
    if (word == "word0" || word == "word1" || word == "word2" ||
        word == "word3" || word == "word4") {
      std::printf("  %-8s batch=%-8lld stream=%-8lld %s\n", word.c_str(),
                  static_cast<long long>(count),
                  static_cast<long long>(stream_counts.at(word)),
                  count == stream_counts.at(word) ? "OK" : "MISMATCH!");
      ++shown;
    }
  }
  STREAMLINE_CHECK_EQ(shown, 5);
  STREAMLINE_CHECK(batch_counts == stream_counts)
      << "batch and streaming runs diverged";
  std::printf(
      "\nidentical results from identical pipeline code -- data at rest and "
      "data in motion unified.\n");
  return 0;
}
