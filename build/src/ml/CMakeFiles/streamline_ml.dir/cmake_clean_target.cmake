file(REMOVE_RECURSE
  "libstreamline_ml.a"
)
