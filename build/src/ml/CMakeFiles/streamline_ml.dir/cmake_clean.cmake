file(REMOVE_RECURSE
  "CMakeFiles/streamline_ml.dir/learner_operator.cc.o"
  "CMakeFiles/streamline_ml.dir/learner_operator.cc.o.d"
  "CMakeFiles/streamline_ml.dir/online_model.cc.o"
  "CMakeFiles/streamline_ml.dir/online_model.cc.o.d"
  "libstreamline_ml.a"
  "libstreamline_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamline_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
