# Empty dependencies file for streamline_ml.
# This may be replaced when dependencies are built.
