
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/adstream.cc" "src/workload/CMakeFiles/streamline_workload.dir/adstream.cc.o" "gcc" "src/workload/CMakeFiles/streamline_workload.dir/adstream.cc.o.d"
  "/root/repo/src/workload/clickstream.cc" "src/workload/CMakeFiles/streamline_workload.dir/clickstream.cc.o" "gcc" "src/workload/CMakeFiles/streamline_workload.dir/clickstream.cc.o.d"
  "/root/repo/src/workload/text.cc" "src/workload/CMakeFiles/streamline_workload.dir/text.cc.o" "gcc" "src/workload/CMakeFiles/streamline_workload.dir/text.cc.o.d"
  "/root/repo/src/workload/timeseries.cc" "src/workload/CMakeFiles/streamline_workload.dir/timeseries.cc.o" "gcc" "src/workload/CMakeFiles/streamline_workload.dir/timeseries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/viz/CMakeFiles/streamline_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/streamline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
