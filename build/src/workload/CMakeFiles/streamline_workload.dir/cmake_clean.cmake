file(REMOVE_RECURSE
  "CMakeFiles/streamline_workload.dir/adstream.cc.o"
  "CMakeFiles/streamline_workload.dir/adstream.cc.o.d"
  "CMakeFiles/streamline_workload.dir/clickstream.cc.o"
  "CMakeFiles/streamline_workload.dir/clickstream.cc.o.d"
  "CMakeFiles/streamline_workload.dir/text.cc.o"
  "CMakeFiles/streamline_workload.dir/text.cc.o.d"
  "CMakeFiles/streamline_workload.dir/timeseries.cc.o"
  "CMakeFiles/streamline_workload.dir/timeseries.cc.o.d"
  "libstreamline_workload.a"
  "libstreamline_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamline_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
