file(REMOVE_RECURSE
  "libstreamline_workload.a"
)
