# Empty dependencies file for streamline_workload.
# This may be replaced when dependencies are built.
