file(REMOVE_RECURSE
  "CMakeFiles/streamline_dataflow.dir/event_log.cc.o"
  "CMakeFiles/streamline_dataflow.dir/event_log.cc.o.d"
  "CMakeFiles/streamline_dataflow.dir/executor.cc.o"
  "CMakeFiles/streamline_dataflow.dir/executor.cc.o.d"
  "CMakeFiles/streamline_dataflow.dir/graph.cc.o"
  "CMakeFiles/streamline_dataflow.dir/graph.cc.o.d"
  "CMakeFiles/streamline_dataflow.dir/io.cc.o"
  "CMakeFiles/streamline_dataflow.dir/io.cc.o.d"
  "CMakeFiles/streamline_dataflow.dir/operators.cc.o"
  "CMakeFiles/streamline_dataflow.dir/operators.cc.o.d"
  "CMakeFiles/streamline_dataflow.dir/snapshot.cc.o"
  "CMakeFiles/streamline_dataflow.dir/snapshot.cc.o.d"
  "CMakeFiles/streamline_dataflow.dir/sources.cc.o"
  "CMakeFiles/streamline_dataflow.dir/sources.cc.o.d"
  "CMakeFiles/streamline_dataflow.dir/temporal_join.cc.o"
  "CMakeFiles/streamline_dataflow.dir/temporal_join.cc.o.d"
  "CMakeFiles/streamline_dataflow.dir/window_operator.cc.o"
  "CMakeFiles/streamline_dataflow.dir/window_operator.cc.o.d"
  "libstreamline_dataflow.a"
  "libstreamline_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamline_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
