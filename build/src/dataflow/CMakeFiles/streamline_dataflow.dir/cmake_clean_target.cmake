file(REMOVE_RECURSE
  "libstreamline_dataflow.a"
)
