
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/event_log.cc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/event_log.cc.o" "gcc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/event_log.cc.o.d"
  "/root/repo/src/dataflow/executor.cc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/executor.cc.o" "gcc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/executor.cc.o.d"
  "/root/repo/src/dataflow/graph.cc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/graph.cc.o" "gcc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/graph.cc.o.d"
  "/root/repo/src/dataflow/io.cc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/io.cc.o" "gcc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/io.cc.o.d"
  "/root/repo/src/dataflow/operators.cc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/operators.cc.o" "gcc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/operators.cc.o.d"
  "/root/repo/src/dataflow/snapshot.cc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/snapshot.cc.o" "gcc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/snapshot.cc.o.d"
  "/root/repo/src/dataflow/sources.cc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/sources.cc.o" "gcc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/sources.cc.o.d"
  "/root/repo/src/dataflow/temporal_join.cc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/temporal_join.cc.o" "gcc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/temporal_join.cc.o.d"
  "/root/repo/src/dataflow/window_operator.cc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/window_operator.cc.o" "gcc" "src/dataflow/CMakeFiles/streamline_dataflow.dir/window_operator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/window/CMakeFiles/streamline_window.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/streamline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
