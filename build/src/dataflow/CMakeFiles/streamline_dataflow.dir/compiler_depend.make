# Empty compiler generated dependencies file for streamline_dataflow.
# This may be replaced when dependencies are built.
