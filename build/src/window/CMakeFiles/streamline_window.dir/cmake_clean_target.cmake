file(REMOVE_RECURSE
  "libstreamline_window.a"
)
