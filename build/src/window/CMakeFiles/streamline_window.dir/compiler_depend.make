# Empty compiler generated dependencies file for streamline_window.
# This may be replaced when dependencies are built.
