file(REMOVE_RECURSE
  "CMakeFiles/streamline_window.dir/dyn_aggregate.cc.o"
  "CMakeFiles/streamline_window.dir/dyn_aggregate.cc.o.d"
  "CMakeFiles/streamline_window.dir/window_fn.cc.o"
  "CMakeFiles/streamline_window.dir/window_fn.cc.o.d"
  "libstreamline_window.a"
  "libstreamline_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamline_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
