
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/window/dyn_aggregate.cc" "src/window/CMakeFiles/streamline_window.dir/dyn_aggregate.cc.o" "gcc" "src/window/CMakeFiles/streamline_window.dir/dyn_aggregate.cc.o.d"
  "/root/repo/src/window/window_fn.cc" "src/window/CMakeFiles/streamline_window.dir/window_fn.cc.o" "gcc" "src/window/CMakeFiles/streamline_window.dir/window_fn.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/streamline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
