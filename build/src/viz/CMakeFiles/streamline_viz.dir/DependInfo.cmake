
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/viz/m4.cc" "src/viz/CMakeFiles/streamline_viz.dir/m4.cc.o" "gcc" "src/viz/CMakeFiles/streamline_viz.dir/m4.cc.o.d"
  "/root/repo/src/viz/pyramid.cc" "src/viz/CMakeFiles/streamline_viz.dir/pyramid.cc.o" "gcc" "src/viz/CMakeFiles/streamline_viz.dir/pyramid.cc.o.d"
  "/root/repo/src/viz/raster.cc" "src/viz/CMakeFiles/streamline_viz.dir/raster.cc.o" "gcc" "src/viz/CMakeFiles/streamline_viz.dir/raster.cc.o.d"
  "/root/repo/src/viz/reducers.cc" "src/viz/CMakeFiles/streamline_viz.dir/reducers.cc.o" "gcc" "src/viz/CMakeFiles/streamline_viz.dir/reducers.cc.o.d"
  "/root/repo/src/viz/server.cc" "src/viz/CMakeFiles/streamline_viz.dir/server.cc.o" "gcc" "src/viz/CMakeFiles/streamline_viz.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/streamline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
