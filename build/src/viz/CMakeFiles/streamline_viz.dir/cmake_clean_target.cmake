file(REMOVE_RECURSE
  "libstreamline_viz.a"
)
