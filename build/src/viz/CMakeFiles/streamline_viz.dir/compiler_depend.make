# Empty compiler generated dependencies file for streamline_viz.
# This may be replaced when dependencies are built.
