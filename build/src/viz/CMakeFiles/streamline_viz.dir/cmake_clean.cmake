file(REMOVE_RECURSE
  "CMakeFiles/streamline_viz.dir/m4.cc.o"
  "CMakeFiles/streamline_viz.dir/m4.cc.o.d"
  "CMakeFiles/streamline_viz.dir/pyramid.cc.o"
  "CMakeFiles/streamline_viz.dir/pyramid.cc.o.d"
  "CMakeFiles/streamline_viz.dir/raster.cc.o"
  "CMakeFiles/streamline_viz.dir/raster.cc.o.d"
  "CMakeFiles/streamline_viz.dir/reducers.cc.o"
  "CMakeFiles/streamline_viz.dir/reducers.cc.o.d"
  "CMakeFiles/streamline_viz.dir/server.cc.o"
  "CMakeFiles/streamline_viz.dir/server.cc.o.d"
  "libstreamline_viz.a"
  "libstreamline_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamline_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
