
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/datastream.cc" "src/api/CMakeFiles/streamline_api.dir/datastream.cc.o" "gcc" "src/api/CMakeFiles/streamline_api.dir/datastream.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataflow/CMakeFiles/streamline_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/window/CMakeFiles/streamline_window.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/streamline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
