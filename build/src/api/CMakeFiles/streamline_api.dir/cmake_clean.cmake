file(REMOVE_RECURSE
  "CMakeFiles/streamline_api.dir/datastream.cc.o"
  "CMakeFiles/streamline_api.dir/datastream.cc.o.d"
  "libstreamline_api.a"
  "libstreamline_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamline_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
