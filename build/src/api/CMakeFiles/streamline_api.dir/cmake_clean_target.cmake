file(REMOVE_RECURSE
  "libstreamline_api.a"
)
