# Empty dependencies file for streamline_api.
# This may be replaced when dependencies are built.
