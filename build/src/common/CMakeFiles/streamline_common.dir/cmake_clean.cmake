file(REMOVE_RECURSE
  "CMakeFiles/streamline_common.dir/logging.cc.o"
  "CMakeFiles/streamline_common.dir/logging.cc.o.d"
  "CMakeFiles/streamline_common.dir/metrics.cc.o"
  "CMakeFiles/streamline_common.dir/metrics.cc.o.d"
  "CMakeFiles/streamline_common.dir/random.cc.o"
  "CMakeFiles/streamline_common.dir/random.cc.o.d"
  "CMakeFiles/streamline_common.dir/record.cc.o"
  "CMakeFiles/streamline_common.dir/record.cc.o.d"
  "CMakeFiles/streamline_common.dir/schema.cc.o"
  "CMakeFiles/streamline_common.dir/schema.cc.o.d"
  "CMakeFiles/streamline_common.dir/serde.cc.o"
  "CMakeFiles/streamline_common.dir/serde.cc.o.d"
  "CMakeFiles/streamline_common.dir/status.cc.o"
  "CMakeFiles/streamline_common.dir/status.cc.o.d"
  "CMakeFiles/streamline_common.dir/thread_pool.cc.o"
  "CMakeFiles/streamline_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/streamline_common.dir/value.cc.o"
  "CMakeFiles/streamline_common.dir/value.cc.o.d"
  "libstreamline_common.a"
  "libstreamline_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streamline_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
