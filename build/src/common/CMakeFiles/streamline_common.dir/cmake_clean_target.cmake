file(REMOVE_RECURSE
  "libstreamline_common.a"
)
