# Empty compiler generated dependencies file for streamline_common.
# This may be replaced when dependencies are built.
