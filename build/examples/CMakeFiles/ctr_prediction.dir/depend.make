# Empty dependencies file for ctr_prediction.
# This may be replaced when dependencies are built.
