file(REMOVE_RECURSE
  "CMakeFiles/clickstream_sessions.dir/clickstream_sessions.cpp.o"
  "CMakeFiles/clickstream_sessions.dir/clickstream_sessions.cpp.o.d"
  "clickstream_sessions"
  "clickstream_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clickstream_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
