file(REMOVE_RECURSE
  "CMakeFiles/ad_ctr_dashboard.dir/ad_ctr_dashboard.cpp.o"
  "CMakeFiles/ad_ctr_dashboard.dir/ad_ctr_dashboard.cpp.o.d"
  "ad_ctr_dashboard"
  "ad_ctr_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_ctr_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
