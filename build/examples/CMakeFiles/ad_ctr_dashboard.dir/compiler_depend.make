# Empty compiler generated dependencies file for ad_ctr_dashboard.
# This may be replaced when dependencies are built.
