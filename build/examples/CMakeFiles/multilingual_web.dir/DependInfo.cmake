
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/multilingual_web.cpp" "examples/CMakeFiles/multilingual_web.dir/multilingual_web.cpp.o" "gcc" "examples/CMakeFiles/multilingual_web.dir/multilingual_web.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/streamline_api.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/streamline_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/streamline_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/window/CMakeFiles/streamline_window.dir/DependInfo.cmake"
  "/root/repo/build/src/viz/CMakeFiles/streamline_viz.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/streamline_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
