# Empty dependencies file for multilingual_web.
# This may be replaced when dependencies are built.
