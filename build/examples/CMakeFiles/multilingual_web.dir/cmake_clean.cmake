file(REMOVE_RECURSE
  "CMakeFiles/multilingual_web.dir/multilingual_web.cpp.o"
  "CMakeFiles/multilingual_web.dir/multilingual_web.cpp.o.d"
  "multilingual_web"
  "multilingual_web.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multilingual_web.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
