# Empty compiler generated dependencies file for e6_checkpoint_overhead.
# This may be replaced when dependencies are built.
