file(REMOVE_RECURSE
  "CMakeFiles/e6_checkpoint_overhead.dir/e6_checkpoint_overhead.cc.o"
  "CMakeFiles/e6_checkpoint_overhead.dir/e6_checkpoint_overhead.cc.o.d"
  "e6_checkpoint_overhead"
  "e6_checkpoint_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e6_checkpoint_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
