# Empty compiler generated dependencies file for e4_agg_functions.
# This may be replaced when dependencies are built.
