file(REMOVE_RECURSE
  "CMakeFiles/e4_agg_functions.dir/e4_agg_functions.cc.o"
  "CMakeFiles/e4_agg_functions.dir/e4_agg_functions.cc.o.d"
  "e4_agg_functions"
  "e4_agg_functions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e4_agg_functions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
