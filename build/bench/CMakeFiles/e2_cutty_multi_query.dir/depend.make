# Empty dependencies file for e2_cutty_multi_query.
# This may be replaced when dependencies are built.
