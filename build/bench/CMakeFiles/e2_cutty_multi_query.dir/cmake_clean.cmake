file(REMOVE_RECURSE
  "CMakeFiles/e2_cutty_multi_query.dir/e2_cutty_multi_query.cc.o"
  "CMakeFiles/e2_cutty_multi_query.dir/e2_cutty_multi_query.cc.o.d"
  "e2_cutty_multi_query"
  "e2_cutty_multi_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e2_cutty_multi_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
