# Empty dependencies file for e3_cutty_sessions.
# This may be replaced when dependencies are built.
