file(REMOVE_RECURSE
  "CMakeFiles/e3_cutty_sessions.dir/e3_cutty_sessions.cc.o"
  "CMakeFiles/e3_cutty_sessions.dir/e3_cutty_sessions.cc.o.d"
  "e3_cutty_sessions"
  "e3_cutty_sessions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_cutty_sessions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
