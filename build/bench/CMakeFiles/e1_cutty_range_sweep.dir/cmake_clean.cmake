file(REMOVE_RECURSE
  "CMakeFiles/e1_cutty_range_sweep.dir/e1_cutty_range_sweep.cc.o"
  "CMakeFiles/e1_cutty_range_sweep.dir/e1_cutty_range_sweep.cc.o.d"
  "e1_cutty_range_sweep"
  "e1_cutty_range_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e1_cutty_range_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
