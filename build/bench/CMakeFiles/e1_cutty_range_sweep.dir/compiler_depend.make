# Empty compiler generated dependencies file for e1_cutty_range_sweep.
# This may be replaced when dependencies are built.
