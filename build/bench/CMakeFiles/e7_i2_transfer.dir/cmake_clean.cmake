file(REMOVE_RECURSE
  "CMakeFiles/e7_i2_transfer.dir/e7_i2_transfer.cc.o"
  "CMakeFiles/e7_i2_transfer.dir/e7_i2_transfer.cc.o.d"
  "e7_i2_transfer"
  "e7_i2_transfer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e7_i2_transfer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
