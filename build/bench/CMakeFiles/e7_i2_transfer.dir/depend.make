# Empty dependencies file for e7_i2_transfer.
# This may be replaced when dependencies are built.
