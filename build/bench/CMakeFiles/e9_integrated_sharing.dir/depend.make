# Empty dependencies file for e9_integrated_sharing.
# This may be replaced when dependencies are built.
