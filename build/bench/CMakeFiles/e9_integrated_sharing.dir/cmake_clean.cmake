file(REMOVE_RECURSE
  "CMakeFiles/e9_integrated_sharing.dir/e9_integrated_sharing.cc.o"
  "CMakeFiles/e9_integrated_sharing.dir/e9_integrated_sharing.cc.o.d"
  "e9_integrated_sharing"
  "e9_integrated_sharing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e9_integrated_sharing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
