# Empty compiler generated dependencies file for e8_i2_error.
# This may be replaced when dependencies are built.
