file(REMOVE_RECURSE
  "CMakeFiles/e8_i2_error.dir/e8_i2_error.cc.o"
  "CMakeFiles/e8_i2_error.dir/e8_i2_error.cc.o.d"
  "e8_i2_error"
  "e8_i2_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e8_i2_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
