# Empty dependencies file for e10_ysb_pipeline.
# This may be replaced when dependencies are built.
