# Empty dependencies file for e5_engine_pipeline.
# This may be replaced when dependencies are built.
