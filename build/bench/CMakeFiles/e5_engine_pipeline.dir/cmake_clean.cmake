file(REMOVE_RECURSE
  "CMakeFiles/e5_engine_pipeline.dir/e5_engine_pipeline.cc.o"
  "CMakeFiles/e5_engine_pipeline.dir/e5_engine_pipeline.cc.o.d"
  "e5_engine_pipeline"
  "e5_engine_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e5_engine_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
