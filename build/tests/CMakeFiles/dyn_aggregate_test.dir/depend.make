# Empty dependencies file for dyn_aggregate_test.
# This may be replaced when dependencies are built.
