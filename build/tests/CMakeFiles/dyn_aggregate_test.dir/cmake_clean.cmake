file(REMOVE_RECURSE
  "CMakeFiles/dyn_aggregate_test.dir/dyn_aggregate_test.cc.o"
  "CMakeFiles/dyn_aggregate_test.dir/dyn_aggregate_test.cc.o.d"
  "dyn_aggregate_test"
  "dyn_aggregate_test.pdb"
  "dyn_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dyn_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
