file(REMOVE_RECURSE
  "CMakeFiles/temporal_join_test.dir/temporal_join_test.cc.o"
  "CMakeFiles/temporal_join_test.dir/temporal_join_test.cc.o.d"
  "temporal_join_test"
  "temporal_join_test.pdb"
  "temporal_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
