# Empty dependencies file for temporal_join_test.
# This may be replaced when dependencies are built.
