# Empty dependencies file for aggregate_fn_test.
# This may be replaced when dependencies are built.
