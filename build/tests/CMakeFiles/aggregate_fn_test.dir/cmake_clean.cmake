file(REMOVE_RECURSE
  "CMakeFiles/aggregate_fn_test.dir/aggregate_fn_test.cc.o"
  "CMakeFiles/aggregate_fn_test.dir/aggregate_fn_test.cc.o.d"
  "aggregate_fn_test"
  "aggregate_fn_test.pdb"
  "aggregate_fn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_fn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
