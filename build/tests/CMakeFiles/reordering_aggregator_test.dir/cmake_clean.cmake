file(REMOVE_RECURSE
  "CMakeFiles/reordering_aggregator_test.dir/reordering_aggregator_test.cc.o"
  "CMakeFiles/reordering_aggregator_test.dir/reordering_aggregator_test.cc.o.d"
  "reordering_aggregator_test"
  "reordering_aggregator_test.pdb"
  "reordering_aggregator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reordering_aggregator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
