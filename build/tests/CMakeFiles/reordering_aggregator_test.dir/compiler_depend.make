# Empty compiler generated dependencies file for reordering_aggregator_test.
# This may be replaced when dependencies are built.
