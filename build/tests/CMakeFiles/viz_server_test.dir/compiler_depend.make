# Empty compiler generated dependencies file for viz_server_test.
# This may be replaced when dependencies are built.
