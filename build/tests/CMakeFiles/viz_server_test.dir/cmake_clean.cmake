file(REMOVE_RECURSE
  "CMakeFiles/viz_server_test.dir/viz_server_test.cc.o"
  "CMakeFiles/viz_server_test.dir/viz_server_test.cc.o.d"
  "viz_server_test"
  "viz_server_test.pdb"
  "viz_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viz_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
