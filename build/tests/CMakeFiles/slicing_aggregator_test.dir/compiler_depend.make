# Empty compiler generated dependencies file for slicing_aggregator_test.
# This may be replaced when dependencies are built.
