file(REMOVE_RECURSE
  "CMakeFiles/slicing_aggregator_test.dir/slicing_aggregator_test.cc.o"
  "CMakeFiles/slicing_aggregator_test.dir/slicing_aggregator_test.cc.o.d"
  "slicing_aggregator_test"
  "slicing_aggregator_test.pdb"
  "slicing_aggregator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slicing_aggregator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
