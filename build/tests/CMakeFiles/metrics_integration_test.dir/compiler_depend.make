# Empty compiler generated dependencies file for metrics_integration_test.
# This may be replaced when dependencies are built.
