file(REMOVE_RECURSE
  "CMakeFiles/metrics_integration_test.dir/metrics_integration_test.cc.o"
  "CMakeFiles/metrics_integration_test.dir/metrics_integration_test.cc.o.d"
  "metrics_integration_test"
  "metrics_integration_test.pdb"
  "metrics_integration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metrics_integration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
