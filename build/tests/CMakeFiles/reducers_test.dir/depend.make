# Empty dependencies file for reducers_test.
# This may be replaced when dependencies are built.
