file(REMOVE_RECURSE
  "CMakeFiles/reducers_test.dir/reducers_test.cc.o"
  "CMakeFiles/reducers_test.dir/reducers_test.cc.o.d"
  "reducers_test"
  "reducers_test.pdb"
  "reducers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reducers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
