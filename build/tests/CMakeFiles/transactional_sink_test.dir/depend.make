# Empty dependencies file for transactional_sink_test.
# This may be replaced when dependencies are built.
