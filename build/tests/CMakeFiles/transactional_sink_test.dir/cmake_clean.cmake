file(REMOVE_RECURSE
  "CMakeFiles/transactional_sink_test.dir/transactional_sink_test.cc.o"
  "CMakeFiles/transactional_sink_test.dir/transactional_sink_test.cc.o.d"
  "transactional_sink_test"
  "transactional_sink_test.pdb"
  "transactional_sink_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transactional_sink_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
