file(REMOVE_RECURSE
  "CMakeFiles/lateness_test.dir/lateness_test.cc.o"
  "CMakeFiles/lateness_test.dir/lateness_test.cc.o.d"
  "lateness_test"
  "lateness_test.pdb"
  "lateness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lateness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
