# Empty compiler generated dependencies file for lateness_test.
# This may be replaced when dependencies are built.
