file(REMOVE_RECURSE
  "CMakeFiles/window_operator_test.dir/window_operator_test.cc.o"
  "CMakeFiles/window_operator_test.dir/window_operator_test.cc.o.d"
  "window_operator_test"
  "window_operator_test.pdb"
  "window_operator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_operator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
