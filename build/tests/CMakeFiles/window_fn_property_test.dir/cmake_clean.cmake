file(REMOVE_RECURSE
  "CMakeFiles/window_fn_property_test.dir/window_fn_property_test.cc.o"
  "CMakeFiles/window_fn_property_test.dir/window_fn_property_test.cc.o.d"
  "window_fn_property_test"
  "window_fn_property_test.pdb"
  "window_fn_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_fn_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
