# Empty compiler generated dependencies file for window_fn_property_test.
# This may be replaced when dependencies are built.
