file(REMOVE_RECURSE
  "CMakeFiles/viz_concurrency_test.dir/viz_concurrency_test.cc.o"
  "CMakeFiles/viz_concurrency_test.dir/viz_concurrency_test.cc.o.d"
  "viz_concurrency_test"
  "viz_concurrency_test.pdb"
  "viz_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/viz_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
