# Empty dependencies file for viz_concurrency_test.
# This may be replaced when dependencies are built.
