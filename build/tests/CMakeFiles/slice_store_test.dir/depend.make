# Empty dependencies file for slice_store_test.
# This may be replaced when dependencies are built.
