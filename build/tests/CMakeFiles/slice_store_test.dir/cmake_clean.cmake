file(REMOVE_RECURSE
  "CMakeFiles/slice_store_test.dir/slice_store_test.cc.o"
  "CMakeFiles/slice_store_test.dir/slice_store_test.cc.o.d"
  "slice_store_test"
  "slice_store_test.pdb"
  "slice_store_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slice_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
