file(REMOVE_RECURSE
  "CMakeFiles/aggregator_snapshot_test.dir/aggregator_snapshot_test.cc.o"
  "CMakeFiles/aggregator_snapshot_test.dir/aggregator_snapshot_test.cc.o.d"
  "aggregator_snapshot_test"
  "aggregator_snapshot_test.pdb"
  "aggregator_snapshot_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregator_snapshot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
