# Empty dependencies file for aggregator_snapshot_test.
# This may be replaced when dependencies are built.
