# Empty compiler generated dependencies file for baseline_aggregators_test.
# This may be replaced when dependencies are built.
