file(REMOVE_RECURSE
  "CMakeFiles/baseline_aggregators_test.dir/baseline_aggregators_test.cc.o"
  "CMakeFiles/baseline_aggregators_test.dir/baseline_aggregators_test.cc.o.d"
  "baseline_aggregators_test"
  "baseline_aggregators_test.pdb"
  "baseline_aggregators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_aggregators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
