# Empty dependencies file for disorder_test.
# This may be replaced when dependencies are built.
