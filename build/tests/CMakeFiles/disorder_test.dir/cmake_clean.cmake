file(REMOVE_RECURSE
  "CMakeFiles/disorder_test.dir/disorder_test.cc.o"
  "CMakeFiles/disorder_test.dir/disorder_test.cc.o.d"
  "disorder_test"
  "disorder_test.pdb"
  "disorder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disorder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
