file(REMOVE_RECURSE
  "CMakeFiles/m4_test.dir/m4_test.cc.o"
  "CMakeFiles/m4_test.dir/m4_test.cc.o.d"
  "m4_test"
  "m4_test.pdb"
  "m4_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m4_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
