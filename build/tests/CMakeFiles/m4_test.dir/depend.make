# Empty dependencies file for m4_test.
# This may be replaced when dependencies are built.
