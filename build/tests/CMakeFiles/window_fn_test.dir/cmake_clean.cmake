file(REMOVE_RECURSE
  "CMakeFiles/window_fn_test.dir/window_fn_test.cc.o"
  "CMakeFiles/window_fn_test.dir/window_fn_test.cc.o.d"
  "window_fn_test"
  "window_fn_test.pdb"
  "window_fn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/window_fn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
