# Empty dependencies file for window_fn_test.
# This may be replaced when dependencies are built.
