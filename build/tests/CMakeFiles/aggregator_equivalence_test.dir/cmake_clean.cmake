file(REMOVE_RECURSE
  "CMakeFiles/aggregator_equivalence_test.dir/aggregator_equivalence_test.cc.o"
  "CMakeFiles/aggregator_equivalence_test.dir/aggregator_equivalence_test.cc.o.d"
  "aggregator_equivalence_test"
  "aggregator_equivalence_test.pdb"
  "aggregator_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregator_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
